(* Byte-addressable memory device with an explicit durability model.

   A device has a [view] (what CPU loads and stores observe, i.e. caches
   included) and, for persistent devices, a [durable] image (what survives a
   crash). Three durability regimes:

   - volatile device: no durable image at all;
   - persistent, tracking off: stores are applied to both buffers at once
     (the fast path used by benchmarks);
   - persistent, tracking on: stores are buffered as pending records and
     only reach the durable image once they have been flushed (CLWB) and a
     fence (SFENCE) has drained them — the regime used by the crash
     simulator and the pmemcheck-style trace checker.

   Tracking engines. The original engine kept pending stores in one
   newest-first list: every flush scanned all P pending records and every
   fence partitioned the whole list — O(P) per durability event, which the
   crash-point torture harness replays O(E) times per event. The default
   engine now indexes pending records by cacheline (a dirty table), so a
   flush touches only the buckets of the lines it covers and a fence
   drains an ordered queue of already-flushed records. The list engine is
   kept selectable so the two can be benchmarked and differentially
   tested against each other. *)

let cacheline = 64

type tracking_engine =
  | Line_indexed
  | List_based

type store_rec = {
  seq : int;
  s_off : int;
  s_len : int;
  data : Bytes.t;          (* value at store time *)
  mutable flushed : bool;
  mutable fenced : bool;
}

type event =
  | Ev_store of { off : int; len : int; data : Bytes.t }
  | Ev_flush of { off : int; len : int }
  | Ev_fence

(* Lightweight durability-event descriptor handed to the injector — no
   payload copy, so an armed injector costs one closure call per event. *)
type hook_event =
  | Hk_store of { off : int; len : int }
  | Hk_flush of { off : int; len : int }
  | Hk_fence

type t = {
  name : string;
  size : int;
  view : Bytes.t;
  durable : Bytes.t option;
  mutable tracking : bool;
  mutable engine : tracking_engine;
  mutable next_seq : int;
  (* List engine state. *)
  mutable pending : store_rec list;   (* newest first *)
  (* Line-indexed engine state. All pending records live in [p_journal]
     in program order; [line_tbl] indexes the not-yet-flushed ones by
     cacheline; [flushed_q] holds flushed-not-yet-fenced records in flush
     order (re-sorted by seq at the fence, which only pays for what it
     drains). Fenced records stay in the journal until compaction. *)
  p_journal : store_rec Journal.t;
  mutable p_live : int;               (* unfenced records in p_journal *)
  line_tbl : (int, store_rec list ref) Hashtbl.t;
  flushed_q : store_rec Journal.t;
  trace_j : event Journal.t;          (* program order; only when tracking *)
  mutable n_stores : int;
  mutable n_flushes : int;
  mutable n_fences : int;
  mutable n_batched_ops : int;
  mutable n_fences_saved : int;
  mutable injector : (hook_event -> unit) option;
  mutable bad_blocks : (int * int) list;   (* (off, len) poisoned regions *)
  mutable powered_off : bool;
}

(* New devices pick up the process-wide default engine, so harnesses that
   replay workloads through freshly built pools (the torture enumerator
   rebuilds one per crash point) can be switched wholesale. *)
let default_engine_ref = ref Line_indexed
let set_default_engine e = default_engine_ref := e
let default_engine () = !default_engine_ref

(* Scoped selection: the default engine is process-wide state, and a test
   or bench that sets it and raises would poison every later suite. The
   combinator restores the previous default on any exit path. *)
let with_default_engine e f =
  let saved = !default_engine_ref in
  default_engine_ref := e;
  Fun.protect ~finally:(fun () -> default_engine_ref := saved) f

let create ~name ~durable size =
  { name; size; view = Bytes.make size '\000'; durable;
    tracking = false; engine = !default_engine_ref; next_seq = 0;
    pending = [];
    p_journal = Journal.create (); p_live = 0;
    line_tbl = Hashtbl.create 64; flushed_q = Journal.create ();
    trace_j = Journal.create ();
    n_stores = 0; n_flushes = 0; n_fences = 0;
    n_batched_ops = 0; n_fences_saved = 0;
    injector = None; bad_blocks = []; powered_off = false }

let create_volatile ~name size = create ~name ~durable:None size

let create_persistent ~name size =
  create ~name ~durable:(Some (Bytes.make size '\000')) size

let name t = t.name
let size t = t.size
let is_persistent t = t.durable <> None

let has_pending t =
  t.pending <> [] || t.p_live > 0

let clear_pending t =
  t.pending <- [];
  Journal.clear t.p_journal;
  t.p_live <- 0;
  Hashtbl.reset t.line_tbl;
  Journal.clear t.flushed_q

let engine t = t.engine

let set_engine t e =
  if e <> t.engine then begin
    if t.tracking && has_pending t then
      invalid_arg
        "Memdev.set_engine: pending stores buffered; switch engines at a \
         quiescent point (after a fence or crash)";
    clear_pending t;
    t.engine <- e
  end

let set_tracking t on =
  if on && not (is_persistent t) then
    invalid_arg "Memdev.set_tracking: device is volatile";
  t.tracking <- on;
  if not on then begin
    (* Leaving tracking mode: make the view durable so the regimes agree. *)
    (match t.durable with
     | Some d -> Bytes.blit t.view 0 d 0 t.size
     | None -> ());
    clear_pending t;
    Journal.clear t.trace_j
  end

let check_range t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Memdev(%s): range [%d, %d+%d) out of device bounds %d"
         t.name off off len t.size)

(* Fault injection: a pluggable callback fired after every durability
   event (store, flush, fence). An injector that raises models a power
   failure at exactly that event — the store/flush has already reached
   the view and the pending set, then the machine dies. *)

let set_injector t inj = t.injector <- inj

let inject t ev =
  match t.injector with
  | None -> ()
  | Some f -> f ev

(* Power failure freeze. Between the instant the power dies and the
   restart, stores, flushes and fences from the dying process are
   discarded — without this, an exception-driven "crash" would let
   [with_tx]'s abort handler tidy the media post-mortem and every crash
   point would look like a clean abort. [crash] restores power. *)

let power_off t = t.powered_off <- true
let is_powered_off t = t.powered_off

(* Media faults: bad-block regions whose loads deliver SIGBUS, the way a
   real PM DIMM reports an uncorrectable media error on access. *)

let add_bad_block t ~off ~len =
  check_range t off len;
  if len > 0 then t.bad_blocks <- (off, len) :: t.bad_blocks

let clear_bad_blocks t = t.bad_blocks <- []

let bad_blocks t = t.bad_blocks

let check_load t ~off ~len =
  match t.bad_blocks with
  | [] -> ()
  | bbs ->
    List.iter
      (fun (b_off, b_len) ->
        if off < b_off + b_len && b_off < off + len then
          Fault.bus_error (max off b_off))
      bbs

(* Loads always observe the view. *)

let load_bytes t ~off ~len =
  check_range t off len;
  check_load t ~off ~len;
  Bytes.sub t.view off len

let load_into t ~off ~len ~dst ~dst_off =
  check_range t off len;
  check_load t ~off ~len;
  Bytes.blit t.view off dst dst_off len

let unsafe_view t = t.view
let unsafe_durable t = t.durable

(* Stores. *)

let line_of off = off / cacheline

let add_to_line_tbl t r =
  (* A record is indexed under every cacheline it touches; zero-length
     records touch none and simply await compaction. *)
  if r.s_len > 0 then
    for line = line_of r.s_off to line_of (r.s_off + r.s_len - 1) do
      match Hashtbl.find_opt t.line_tbl line with
      | Some bucket -> bucket := r :: !bucket
      | None -> Hashtbl.add t.line_tbl line (ref [ r ])
    done

let record_store t off len =
  let data = Bytes.sub t.view off len in
  let r = { seq = t.next_seq; s_off = off; s_len = len; data;
            flushed = false; fenced = false } in
  t.next_seq <- t.next_seq + 1;
  (match t.engine with
   | List_based -> t.pending <- r :: t.pending
   | Line_indexed ->
     Journal.push t.p_journal r;
     t.p_live <- t.p_live + 1;
     add_to_line_tbl t r);
  Journal.push t.trace_j (Ev_store { off; len; data })

let store_bytes t ~off src ~src_off ~len =
  check_range t off len;
  if not t.powered_off then begin
    Bytes.blit src src_off t.view off len;
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off len
       else Bytes.blit src src_off d off len);
    inject t (Hk_store { off; len })
  end

let store_string t ~off s =
  let len = String.length s in
  check_range t off len;
  if not t.powered_off then begin
    Bytes.blit_string s 0 t.view off len;
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off len
       else Bytes.blit_string s 0 d off len);
    inject t (Hk_store { off; len })
  end

(* Device-level copy: both buffers are touched in place, so Space-level
   memcpy/memmove/blit stop double-copying through an intermediate
   [Bytes.t]. [Bytes.blit] is memmove-safe, and with tracking on the
   pending record snapshots the destination view after the copy — the
   same value an intermediate buffer would have carried. *)

let blit ~src ~src_off ~dst ~dst_off ~len =
  check_range src src_off len;
  check_range dst dst_off len;
  if len > 0 then begin
    check_load src ~off:src_off ~len;
    if not dst.powered_off then begin
      Bytes.blit src.view src_off dst.view dst_off len;
      dst.n_stores <- dst.n_stores + 1;
      (match dst.durable with
       | None -> ()
       | Some d ->
         if dst.tracking then record_store dst dst_off len
         else Bytes.blit dst.view dst_off d dst_off len);
      inject dst (Hk_store { off = dst_off; len })
    end
  end

(* Allocation-free typed stores for the hot paths: the temporary-buffer
   route through [store_bytes] would allocate on every word store, which
   turns benchmark timings into GC noise. *)

let store_u8 t ~off v =
  check_range t off 1;
  if not t.powered_off then begin
    let c = Char.unsafe_chr (v land 0xFF) in
    Bytes.set t.view off c;
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d -> if t.tracking then record_store t off 1 else Bytes.set d off c);
    inject t (Hk_store { off; len = 1 })
  end

let store_u16 t ~off v =
  check_range t off 2;
  if not t.powered_off then begin
    Bytes.set_uint16_le t.view off (v land 0xFFFF);
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off 2
       else Bytes.set_uint16_le d off (v land 0xFFFF));
    inject t (Hk_store { off; len = 2 })
  end

let store_u32 t ~off v =
  check_range t off 4;
  if not t.powered_off then begin
    Bytes.set_int32_le t.view off (Int32.of_int v);
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off 4
       else Bytes.set_int32_le d off (Int32.of_int v));
    inject t (Hk_store { off; len = 4 })
  end

let store_word t ~off v =
  check_range t off 8;
  if not t.powered_off then begin
    Bytes.set_int64_le t.view off (Int64.of_int v);
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off 8
       else Bytes.set_int64_le d off (Int64.of_int v));
    inject t (Hk_store { off; len = 8 })
  end

let fill t ~off ~len c =
  check_range t off len;
  if not t.powered_off then begin
    Bytes.fill t.view off len c;
    t.n_stores <- t.n_stores + 1;
    (match t.durable with
     | None -> ()
     | Some d ->
       if t.tracking then record_store t off len
       else Bytes.fill d off len c);
    inject t (Hk_store { off; len })
  end

(* Flush and fence. *)

let ranges_intersect a_off a_len b_off b_len =
  a_off < b_off + b_len && b_off < a_off + a_len

let flush_list t off len =
  (* CLWB works at cacheline granularity. *)
  let lo = off / cacheline * cacheline in
  let hi = (off + len + cacheline - 1) / cacheline * cacheline in
  let flen = hi - lo in
  List.iter
    (fun r ->
      if (not r.flushed) && ranges_intersect lo flen r.s_off r.s_len then
        r.flushed <- true)
    t.pending

let flush_indexed t off len =
  (* Only the buckets of the covered cachelines are touched. A record
     spanning several lines is flushed on the first hit; the flag stops
     its other buckets from re-queueing it. *)
  if len > 0 then
    for line = line_of off to line_of (off + len - 1) do
      match Hashtbl.find_opt t.line_tbl line with
      | None -> ()
      | Some bucket ->
        List.iter
          (fun r ->
            if not r.flushed then begin
              r.flushed <- true;
              Journal.push t.flushed_q r
            end)
          !bucket;
        Hashtbl.remove t.line_tbl line
    done

let flush t ~off ~len =
  check_range t off len;
  if t.powered_off then ()
  else begin
  t.n_flushes <- t.n_flushes + 1;
  if t.tracking then begin
    (match t.engine with
     | List_based -> flush_list t off len
     | Line_indexed -> flush_indexed t off len);
    Journal.push t.trace_j (Ev_flush { off; len })
  end;
  inject t (Hk_flush { off; len })
  end

let apply_to_durable t r =
  match t.durable with
  | None -> ()
  | Some d -> Bytes.blit r.data 0 d r.s_off r.s_len

let fence_list t =
  (* Drain flushed stores to the durable image, in program order. *)
  let drained, still = List.partition (fun r -> r.flushed) t.pending in
  List.iter (apply_to_durable t) (List.rev drained);
  List.iter (fun r -> r.fenced <- true) drained;
  t.pending <- still

let fence_indexed t =
  (* The queue holds exactly the flushed-unfenced records; sorting the
     drained set by sequence restores program order for overlapping
     stores whose lines were flushed out of order. The whole operation
     costs O(f log f) in the number of records actually drained, never
     O(P) in all pending stores. *)
  if not (Journal.is_empty t.flushed_q) then begin
    let drained = Journal.to_array t.flushed_q in
    Array.sort (fun a b -> compare a.seq b.seq) drained;
    Array.iter
      (fun r ->
        apply_to_durable t r;
        r.fenced <- true)
      drained;
    t.p_live <- t.p_live - Array.length drained;
    Journal.clear t.flushed_q;
    (* Compact once fenced corpses dominate the journal. *)
    if Journal.length t.p_journal > 64
       && 2 * t.p_live < Journal.length t.p_journal
    then Journal.filter_in_place (fun r -> not r.fenced) t.p_journal
  end

let fence t =
  if t.powered_off then ()
  else begin
  t.n_fences <- t.n_fences + 1;
  if t.tracking then begin
    (match t.engine with
     | List_based -> fence_list t
     | Line_indexed -> fence_indexed t);
    Journal.push t.trace_j Ev_fence
  end;
  inject t Hk_fence
  end

let persist t ~off ~len =
  flush t ~off ~len;
  fence t

(* Crash simulation. *)

let crash t =
  (match t.durable with
   | None -> Bytes.fill t.view 0 t.size '\000'
   | Some d -> Bytes.blit d 0 t.view 0 t.size);
  clear_pending t;
  Journal.clear t.trace_j;
  t.powered_off <- false       (* restart: power is back *)

let pending_stores t =
  match t.engine with
  | List_based -> List.rev t.pending
  | Line_indexed ->
    List.filter (fun r -> not r.fenced) (Journal.to_list t.p_journal)

let crash_applying t recs =
  (* A crash where a chosen subset of the pending (not yet fenced) stores
     happened to reach the media before power loss. Used by the
     pmreorder-style state-space explorer. The subset is replayed in
     program order on the durable image before discarding the rest. *)
  (match t.durable with
   | None -> invalid_arg "Memdev.crash_applying: volatile device"
   | Some d ->
     let sorted = List.sort (fun a b -> compare a.seq b.seq) recs in
     List.iter (fun r -> Bytes.blit r.data 0 d r.s_off r.s_len) sorted);
  crash t

let trace t = Journal.to_list t.trace_j
let clear_trace t = Journal.clear t.trace_j

let unflushed_pending t =
  List.filter (fun r -> not r.flushed) (pending_stores t)

type counters = {
  stores : int;
  flushes : int;
  fences : int;
  batched_ops : int;
  fences_saved : int;
}

let counters t =
  { stores = t.n_stores; flushes = t.n_flushes; fences = t.n_fences;
    batched_ops = t.n_batched_ops; fences_saved = t.n_fences_saved }

(* Group-commit accounting, credited by the redo batch layer: [ops]
   operations rode one commit, and committing them one by one would have
   cost [fences_saved] additional fences. The device only records; the
   amortization policy lives above it. *)
let note_batch t ~ops ~fences_saved =
  t.n_batched_ops <- t.n_batched_ops + ops;
  t.n_fences_saved <- t.n_fences_saved + fences_saved

let merge_counters l =
  List.fold_left
    (fun acc c ->
      { stores = acc.stores + c.stores;
        flushes = acc.flushes + c.flushes;
        fences = acc.fences + c.fences;
        batched_ops = acc.batched_ops + c.batched_ops;
        fences_saved = acc.fences_saved + c.fences_saved })
    { stores = 0; flushes = 0; fences = 0; batched_ops = 0; fences_saved = 0 }
    l

let reset_counters t =
  t.n_stores <- 0; t.n_flushes <- 0; t.n_fences <- 0;
  t.n_batched_ops <- 0; t.n_fences_saved <- 0

(* Persistence of the durable image itself to the host filesystem, so that
   pools behave like files under /mnt/pmem as in the paper. *)

let save_durable t path =
  match t.durable with
  | None -> invalid_arg "Memdev.save_durable: volatile device"
  | Some d ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc)
      (fun () -> output_bytes oc d)

let of_image ~name img =
  let size = Bytes.length img in
  let t = create_persistent ~name size in
  (match t.durable with Some d -> Bytes.blit img 0 d 0 size | None -> ());
  Bytes.blit img 0 t.view 0 size;
  t

let durable_snapshot t =
  match t.durable with
  | None -> invalid_arg "Memdev.durable_snapshot: volatile device"
  | Some d -> Bytes.copy d

let corrupt_durable t ~off ~bit =
  match t.durable with
  | None -> invalid_arg "Memdev.corrupt_durable: volatile device"
  | Some d ->
    check_range t off 1;
    let c = Char.code (Bytes.get d off) lxor (1 lsl (bit land 7)) in
    Bytes.set d off (Char.chr c);
    (* The view mirrors the media after the next restart; keep them in
       sync so a flip applied post-crash is observable immediately. *)
    Bytes.set t.view off (Char.chr c)

let load_durable ~name ?(min_size = 16) ?magic path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < min_size then
        invalid_arg
          (Printf.sprintf
             "Memdev.load_durable(%s): file is %d bytes, below the %d-byte \
              minimum — truncated or not a pool image"
             path size min_size);
      let d = Bytes.create size in
      really_input ic d 0 size;
      (match magic with
       | None -> ()
       | Some m ->
         let got = Int64.to_int (Bytes.get_int64_le d 0) in
         if got <> m then
           invalid_arg
             (Printf.sprintf
                "Memdev.load_durable(%s): bad magic 0x%x (expected 0x%x) — \
                 not a pool image for this toolchain"
                path got m));
      let t = create_persistent ~name size in
      (match t.durable with Some dd -> Bytes.blit d 0 dd 0 size | None -> ());
      Bytes.blit d 0 t.view 0 size;
      t)
