(** Fault model of the in-process replication channel.

    Message loss for the batch-replication layer, seeded and
    reproducible: the verdict stream is a pure function of the seed and
    the attempt sequence, so a torture replay sees the same drops at the
    same points every time. Data sends and heartbeats share one channel
    — a channel bad enough to drop commits also misses heartbeats, which
    is what drives the failure detector. *)

type t

type stats = {
  nf_attempts : int;  (** send attempts asked for a verdict *)
  nf_dropped : int;   (** attempts that were dropped *)
}

val create : ?seed:int -> ?drop_rate:float -> unit -> t
(** [drop_rate] (default 0) is the per-attempt loss probability, in
    [0, 1). Raises [Invalid_argument] outside that range. *)

val force_drops : t -> int -> unit
(** Drop the next [n] attempts unconditionally (before consulting the
    seeded rate) — deterministic link-kill for targeted tests. *)

val attempt : t -> bool
(** Verdict for one send attempt: [true] = delivered. *)

val stats : t -> stats
