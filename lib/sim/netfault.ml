(* Fault model of the in-process replication channel.

   A channel is lossy in a seeded, reproducible way: every send attempt
   (data commit or heartbeat) asks for a verdict, and the verdict stream
   is a pure function of the seed and the attempt sequence — the same
   property the torture harness relies on for crash points. [force_drops]
   layers deterministic forced failures on top for targeted tests
   (retry exhaustion, failure-detector timeouts). *)

type t = {
  rng : Random.State.t;
  drop_rate : float;
  mutable forced : int;      (* drop the next N attempts, unconditionally *)
  mutable attempts : int;
  mutable dropped : int;
}

type stats = {
  nf_attempts : int;
  nf_dropped : int;
}

let create ?(seed = 0) ?(drop_rate = 0.) () =
  if drop_rate < 0. || drop_rate >= 1. then
    invalid_arg "Netfault.create: drop_rate must be in [0, 1)";
  { rng = Random.State.make [| 0x4e46; seed |];
    drop_rate; forced = 0; attempts = 0; dropped = 0 }

let force_drops t n =
  if n < 0 then invalid_arg "Netfault.force_drops: negative count";
  t.forced <- t.forced + n

let attempt t =
  t.attempts <- t.attempts + 1;
  let delivered =
    if t.forced > 0 then begin
      t.forced <- t.forced - 1;
      false
    end
    else
      t.drop_rate = 0. || Random.State.float t.rng 1. >= t.drop_rate
  in
  if not delivered then t.dropped <- t.dropped + 1;
  delivered

let stats t = { nf_attempts = t.attempts; nf_dropped = t.dropped }
