(** Open- and closed-loop load generation over {!Net_client}.

    {b Closed loop} keeps a fixed window of operations in flight and
    sends the next as soon as one completes. It measures the server's
    throughput ceiling, but its latency numbers suffer {e coordinated
    omission}: when the server stalls, the generator stops sending, so
    the stall is recorded once instead of once per request that {e would
    have} arrived — exactly the requests a real open population of
    clients would still have issued.

    {b Open loop} models that population: every operation's arrival time
    is drawn from the target rate schedule {e before} the run starts
    ([due_i = t0 + i/rate]), the generator paces sends to that schedule
    (never skipping a slot — if it falls behind it sends immediately,
    back-to-back), and latency is recorded from the {e intended} send
    time to reply decode. A stalled server therefore accrues queueing
    delay on every scheduled arrival it made wait, which is what a tail
    percentile is supposed to mean. The service-time histogram (actual
    send → reply) is kept alongside; the gap between the two {e is} the
    coordinated omission a closed-loop driver would have hidden. *)

type result = {
  lg_ops : int;            (** logical operations completed *)
  lg_requests : int;       (** wire requests sent (an RMW op sends 2) *)
  lg_failed : int;         (** requests answered [Failed _] *)
  lg_wall : float;         (** seconds, first send to last reply *)
  lg_target : float;       (** target arrival rate (ops/s); 0. = closed loop *)
  lg_achieved : float;     (** lg_ops / lg_wall *)
  lg_hist : Spp_benchlib.Histogram.t;
      (** latency (ns) from intended send time — CO-safe in open loop;
          equals service time in closed loop *)
  lg_service : Spp_benchlib.Histogram.t;
      (** latency (ns) from actual send time *)
}

val open_loop :
  Net_client.t ->
  rate:float ->
  ops:int ->
  next:(int -> Spp_shard.Serve.request array) ->
  result
(** Run [ops] operations at a target arrival rate of [rate] ops/s.
    [next i] yields the wire requests of operation [i] (usually one; an
    RMW yields two, measured to the last leg's completion). Replies are
    timestamped by the client's reader domains as they arrive, so
    awaiting them after the send loop does not distort latency. *)

val closed_loop :
  Net_client.t ->
  window:int ->
  ops:int ->
  next:(int -> Spp_shard.Serve.request array) ->
  result
(** Keep up to [window] operations in flight, sending the next as the
    oldest completes. Reports the throughput ceiling; see the module
    comment for why its tail latencies flatter the server. *)

val ycsb_next :
  Spp_benchlib.Ycsb.t ->
  key:(int -> string) ->
  value:(int -> string) ->
  int ->
  Spp_shard.Serve.request array
(** Adapter from {!Spp_benchlib.Ycsb} abstract ops to wire requests:
    Read → [Get], Update/Insert → [Put], Scan (start, span) →
    [Serve.Scan] over [[key start, key (start+span)]] with
    [limit = span], Rmw → [Get] then [Put] (pipelined; the result
    measures to the later completion). *)
