(* Open- and closed-loop drivers. See the interface for the
   coordinated-omission story; the mechanics that make it hold:

   - arrival times are a pure function of (t0, rate, i) — the schedule
     exists independently of how the server behaves;
   - pacing sleeps to ~1 ms before the slot and spins the rest, so an
     idle generator hits its slot within microseconds but never burns a
     core for long waits;
   - when behind schedule it sends immediately and keeps the original
     due time as the latency origin — queueing delay lands in the
     histogram instead of silently stretching the schedule;
   - completion times come from [Net_client.done_at] (stamped by the
     reader domain at frame decode), so the post-run await pass only
     collects numbers, it doesn't produce them. *)

open Spp_shard
open Spp_benchlib

type result = {
  lg_ops : int;
  lg_requests : int;
  lg_failed : int;
  lg_wall : float;
  lg_target : float;
  lg_achieved : float;
  lg_hist : Histogram.t;
  lg_service : Histogram.t;
}

let ns_of_s s = int_of_float (s *. 1e9)

(* Await every leg of [futs], fold the op's completion (latest leg) into
   the histograms against both origins. *)
let collect client hist service ~intended ~actual ~failed futs =
  let done_t = ref 0. in
  Array.iter
    (fun fu ->
      (match Net_client.await client fu with
       | Serve.Failed _ -> incr failed
       | _ -> ());
      let d = Net_client.done_at fu in
      if d > !done_t then done_t := d)
    futs;
  if Array.length futs > 0 then begin
    Histogram.add hist (ns_of_s (!done_t -. intended));
    Histogram.add service (ns_of_s (!done_t -. actual))
  end

let finish ~ops ~requests ~failed ~target ~t0 ~t_end ~hist ~service =
  let wall = Float.max 1e-9 (t_end -. t0) in
  { lg_ops = ops; lg_requests = requests; lg_failed = failed;
    lg_wall = wall; lg_target = target;
    lg_achieved = float_of_int ops /. wall;
    lg_hist = hist; lg_service = service }

let open_loop client ~rate ~ops ~next =
  if rate <= 0. then invalid_arg "Loadgen.open_loop: rate must be positive";
  if ops < 0 then invalid_arg "Loadgen.open_loop: negative ops";
  let hist = Histogram.create () and service = Histogram.create () in
  let futs = Array.make ops [||] in
  let intended = Array.make ops 0. and actual = Array.make ops 0. in
  let requests = ref 0 in
  let t0 = Bench_util.now_mono () in
  for i = 0 to ops - 1 do
    let due = t0 +. (float_of_int i /. rate) in
    let ahead = due -. Bench_util.now_mono () in
    if ahead > 0.0015 then Unix.sleepf (ahead -. 0.001);
    while Bench_util.now_mono () < due do
      Domain.cpu_relax ()
    done;
    let reqs = next i in
    intended.(i) <- due;
    actual.(i) <- Bench_util.now_mono ();
    futs.(i) <- Array.map (Net_client.send client) reqs;
    requests := !requests + Array.length reqs
  done;
  let failed = ref 0 in
  for i = 0 to ops - 1 do
    collect client hist service ~intended:intended.(i) ~actual:actual.(i)
      ~failed futs.(i)
  done;
  let t_end = Bench_util.now_mono () in
  finish ~ops ~requests:!requests ~failed:!failed ~target:rate ~t0 ~t_end ~hist
    ~service

let closed_loop client ~window ~ops ~next =
  if window < 1 then invalid_arg "Loadgen.closed_loop: window must be >= 1";
  if ops < 0 then invalid_arg "Loadgen.closed_loop: negative ops";
  let hist = Histogram.create () and service = Histogram.create () in
  let q : (float * Net_client.future array) Queue.t = Queue.create () in
  let requests = ref 0 and failed = ref 0 in
  let t0 = Bench_util.now_mono () in
  for i = 0 to ops - 1 do
    if Queue.length q >= window then begin
      let sent, futs = Queue.pop q in
      collect client hist service ~intended:sent ~actual:sent ~failed futs
    end;
    let reqs = next i in
    let sent = Bench_util.now_mono () in
    Queue.push (sent, Array.map (Net_client.send client) reqs) q;
    requests := !requests + Array.length reqs
  done;
  Queue.iter
    (fun (sent, futs) ->
      collect client hist service ~intended:sent ~actual:sent ~failed futs)
    q;
  let t_end = Bench_util.now_mono () in
  finish ~ops ~requests:!requests ~failed:!failed ~target:0. ~t0 ~t_end ~hist
    ~service

let ycsb_next y ~key ~value i =
  match Ycsb.next y with
  | Ycsb.Read k -> [| Serve.Get (key k) |]
  | Ycsb.Update k | Ycsb.Insert k ->
    [| Serve.Put { key = key k; value = value i } |]
  | Ycsb.Scan (start, span) ->
    [| Serve.Scan { lo = key start; hi = key (start + span); limit = span } |]
  | Ycsb.Rmw k ->
    let k = key k in
    [| Serve.Get k; Serve.Put { key = k; value = value i } |]
