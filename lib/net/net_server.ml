(* Socket front end: accept loop + one reader/writer domain pair per
   connection, all funneling into the Serve mailboxes.

   The reader submits every decoded request straight away, so a
   connection's requests pipeline into the per-shard queues without
   waiting for earlier replies; correlation ids let replies complete out
   of order. Two completion paths write frames:

   - the reader itself, for tickets [Serve.submit] pre-fulfilled (the
     read-cache bypass): the reply is written immediately under the
     connection's write mutex, ahead of everything still queued — the
     no-worker-hop fast path survives the wire;
   - the writer domain, which pops (corr, ticket) in submission order
     and blocks in [Serve.await] — per-shard tickets resolve in commit
     order, so head-of-line blocking here only reorders across shards,
     which correlation ids make harmless.

   Writes share one mutex per connection, so frames interleave at frame
   granularity only. Failure containment: a corrupt frame stops the
   reader (framing cannot resync), the writer flushes what is owed, and
   the connection closes — the serving pipeline never observes it. *)

open Spp_shard

type stats = {
  sv_accepted : int;
  sv_requests : int;
  sv_replies : int;
  sv_malformed : int;
}

type completion =
  | C_ticket of int * Serve.ticket
  | C_reply of int * Serve.reply
  | C_stop

type conn = {
  c_fd : Unix.file_descr;
  c_wmu : Mutex.t;             (* serializes whole frames onto the fd *)
  c_wbuf : Buffer.t;           (* reused per send, under [c_wmu] *)
  mutable c_scratch : Bytes.t; (* reused write staging, under [c_wmu] *)
  c_cmu : Mutex.t;
  c_work : Condition.t;
  c_cq : completion Queue.t;
}

type t = {
  ns_serve : Serve.t;
  ns_sock : Unix.file_descr;
  ns_addr : Unix.sockaddr;
  ns_accepted : int Atomic.t;
  ns_requests : int Atomic.t;
  ns_replies : int Atomic.t;
  ns_malformed : int Atomic.t;
  ns_stopping : bool Atomic.t;
  ns_cmu : Mutex.t;
  mutable ns_conns : (conn * unit Domain.t * unit Domain.t) list;
  mutable ns_accept : unit Domain.t option;
}

let parse_addr s =
  let fail () = invalid_arg ("bad address (unix:PATH | PORT | HOST:PORT): " ^ s) in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Unix.ADDR_UNIX (String.sub s 5 (String.length s - 5))
  else
    match String.rindex_opt s ':' with
    | None ->
      (match int_of_string_opt s with
       | Some port when port >= 0 && port < 65536 ->
         Unix.ADDR_INET (Unix.inet_addr_loopback, port)
       | _ -> fail ())
    | Some i ->
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
       | Some port when port >= 0 && port < 65536 ->
         (try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
          with _ ->
            (try
               Unix.ADDR_INET
                 ((Unix.gethostbyname host).Unix.h_addr_list.(0), port)
             with _ -> fail ()))
       | _ -> fail ())

let pp_addr ppf = function
  | Unix.ADDR_UNIX path -> Format.fprintf ppf "unix:%s" path
  | Unix.ADDR_INET (a, p) ->
    Format.fprintf ppf "%s:%d" (Unix.string_of_inet_addr a) p

(* ------------------------------------------------------------------ *)
(* Frame writing                                                       *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

(* Encode under the write mutex into the reused buffer/scratch pair and
   push the whole frame in one (retried) write. Raises on a dead peer;
   callers drop the connection. *)
let send_reply t conn ~corr r =
  Mutex.lock conn.c_wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wmu)
    (fun () ->
      Buffer.clear conn.c_wbuf;
      Wire.encode_reply conn.c_wbuf ~corr r;
      let n = Buffer.length conn.c_wbuf in
      if Bytes.length conn.c_scratch < n then
        conn.c_scratch <- Bytes.create (max n (2 * Bytes.length conn.c_scratch));
      Buffer.blit conn.c_wbuf 0 conn.c_scratch 0 n;
      write_all conn.c_fd conn.c_scratch 0 n);
  Atomic.incr t.ns_replies

let push conn c =
  Mutex.lock conn.c_cmu;
  Queue.push c conn.c_cq;
  Condition.signal conn.c_work;
  Mutex.unlock conn.c_cmu

(* ------------------------------------------------------------------ *)
(* Per-connection domains                                              *)
(* ------------------------------------------------------------------ *)

(* The writer drains the completion queue in batches and coalesces
   every already-resolved reply into one [write] — under a pipelined
   load the per-reply syscall disappears, which is most of the loopback
   overhead. It only blocks in [Serve.await] after flushing what it has
   encoded (never sitting on frames the peer could already read), and it
   always awaits every ticket even when the peer is gone, so
   [Serve.stop]'s drain never waits on a dead connection. *)
let writer t conn =
  let wbuf = Buffer.create 4096 in
  let scratch = ref (Bytes.create 4096) in
  let nframes = ref 0 in
  let flush () =
    let n = Buffer.length wbuf in
    if n > 0 then begin
      if Bytes.length !scratch < n then
        scratch := Bytes.create (max n (2 * Bytes.length !scratch));
      Buffer.blit wbuf 0 !scratch 0 n;
      Buffer.clear wbuf;
      let k = !nframes in
      nframes := 0;
      try
        Mutex.lock conn.c_wmu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock conn.c_wmu)
          (fun () -> write_all conn.c_fd !scratch 0 n);
        ignore (Atomic.fetch_and_add t.ns_replies k)
      with _ -> ()   (* peer gone; keep draining tickets *)
    end
  in
  let enc corr r =
    Wire.encode_reply wbuf ~corr r;
    incr nframes
  in
  let batch = Queue.create () in
  let running = ref true in
  while !running do
    Mutex.lock conn.c_cmu;
    while Queue.is_empty conn.c_cq do
      Condition.wait conn.c_work conn.c_cmu
    done;
    Queue.transfer conn.c_cq batch;
    Mutex.unlock conn.c_cmu;
    while not (Queue.is_empty batch) do
      match Queue.pop batch with
      | C_stop -> running := false   (* always last: reader pushed it at exit *)
      | C_reply (corr, r) -> enc corr r
      | C_ticket (corr, tk) ->
        (match Serve.peek tk with
         | Some r -> enc corr r
         | None ->
           flush ();
           enc corr (Serve.await t.ns_serve tk))
    done;
    flush ()
  done;
  (try Unix.close conn.c_fd with _ -> ())

let handle t conn corr (req : Serve.request) =
  match req with
  | Serve.Scan { lo; hi; limit } ->
    (* whole-store scatter-gather scan; no routing key, so it runs here
       on the reader and this connection's pipeline queues behind it *)
    let r =
      try
        match Serve.scan t.ns_serve ~lo ~hi ~limit with
        | Ok kvs -> Serve.Scanned kvs
        | Error f -> Serve.Failed f
      with e -> Serve.Failed (Serve.Op_raised (Printexc.to_string e))
    in
    push conn (C_reply (corr, r))
  | _ ->
    (match Serve.submit t.ns_serve req with
     | exception e ->
       push conn
         (C_reply (corr, Serve.Failed (Serve.Op_raised (Printexc.to_string e))))
     | tk ->
       (match Serve.peek tk with
        | Some r ->
          (* cache-hit get, fulfilled at submission: answer now, ahead
             of every queued completion *)
          (try send_reply t conn ~corr r with _ -> ())
        | None -> push conn (C_ticket (corr, tk))))

let reader t conn =
  let buf = Bytes.create 65536 in
  let dec = Wire.decoder () in
  (try
     let running = ref true in
     while !running do
       let n = Unix.read conn.c_fd buf 0 (Bytes.length buf) in
       if n = 0 then running := false
       else begin
         Wire.feed dec buf ~off:0 ~len:n;
         let popping = ref true in
         while !popping do
           match Wire.next_request dec with
           | Wire.Awaiting -> popping := false
           | Wire.Msg (corr, req) ->
             Atomic.incr t.ns_requests;
             handle t conn corr req
           | Wire.Corrupt _ ->
             (* framing is gone; drop the connection, not the server *)
             Atomic.incr t.ns_malformed;
             popping := false;
             running := false
         done
       end
     done
   with _ -> ());
  (* no more requests will be accepted; the writer flushes what is owed
     and closes the fd *)
  (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_RECEIVE with _ -> ());
  push conn C_stop

(* ------------------------------------------------------------------ *)
(* Accept loop / lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let mk_conn fd =
  { c_fd = fd; c_wmu = Mutex.create (); c_wbuf = Buffer.create 1024;
    c_scratch = Bytes.create 1024; c_cmu = Mutex.create ();
    c_work = Condition.create (); c_cq = Queue.create () }

let acceptor t =
  let running = ref true in
  while !running do
    match Unix.accept t.ns_sock with
    | exception _ -> running := false   (* listening socket closed *)
    | fd, _peer ->
      if Atomic.get t.ns_stopping then (try Unix.close fd with _ -> ())
      else begin
        (match t.ns_addr with
         | Unix.ADDR_INET _ ->
           (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
         | _ -> ());
        Atomic.incr t.ns_accepted;
        let conn = mk_conn fd in
        let rd = Domain.spawn (fun () -> reader t conn) in
        let wd = Domain.spawn (fun () -> writer t conn) in
        Mutex.lock t.ns_cmu;
        t.ns_conns <- (conn, rd, wd) :: t.ns_conns;
        Mutex.unlock t.ns_cmu
      end
  done

let create ?(backlog = 64) serve addr =
  (match addr with
   | Unix.ADDR_UNIX path -> (try Unix.unlink path with _ -> ())
   | _ -> ());
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (match addr with
   | Unix.ADDR_INET _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
   | _ -> ());
  (try
     Unix.bind sock addr;
     Unix.listen sock backlog
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let t =
    { ns_serve = serve; ns_sock = sock; ns_addr = Unix.getsockname sock;
      ns_accepted = Atomic.make 0; ns_requests = Atomic.make 0;
      ns_replies = Atomic.make 0; ns_malformed = Atomic.make 0;
      ns_stopping = Atomic.make false; ns_cmu = Mutex.create ();
      ns_conns = []; ns_accept = None }
  in
  t.ns_accept <- Some (Domain.spawn (fun () -> acceptor t));
  t

let addr t = t.ns_addr
let serve t = t.ns_serve

let stats t =
  { sv_accepted = Atomic.get t.ns_accepted;
    sv_requests = Atomic.get t.ns_requests;
    sv_replies = Atomic.get t.ns_replies;
    sv_malformed = Atomic.get t.ns_malformed }

let stop t =
  if not (Atomic.exchange t.ns_stopping true) then begin
    (* closing a listening fd does not wake a thread blocked in accept
       on Linux: shutdown it (accept fails with EINVAL) and poke a
       dummy connection in case shutdown is a no-op for this family *)
    (try Unix.shutdown t.ns_sock Unix.SHUTDOWN_ALL with _ -> ());
    (try
       let fd =
         Unix.socket (Unix.domain_of_sockaddr t.ns_addr) Unix.SOCK_STREAM 0
       in
       (try Unix.connect fd t.ns_addr with _ -> ());
       Unix.close fd
     with _ -> ());
    Option.iter Domain.join t.ns_accept;
    (try Unix.close t.ns_sock with _ -> ());
    t.ns_accept <- None;
    Mutex.lock t.ns_cmu;
    let conns = t.ns_conns in
    t.ns_conns <- [];
    Mutex.unlock t.ns_cmu;
    (* wake blocked readers; writers drain their queues, then close *)
    List.iter
      (fun (conn, _, _) ->
        try Unix.shutdown conn.c_fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter
      (fun (_, rd, wd) ->
        Domain.join rd;
        Domain.join wd)
      conns;
    match t.ns_addr with
    | Unix.ADDR_UNIX path -> (try Unix.unlink path with _ -> ())
    | _ -> ()
  end
