(* Length-prefixed binary codec for the serving protocol.

   Frame layout (all integers little-endian):

     u32 payload_len | payload
     payload := u32 corr | u8 tag | fields

   Request tags 0x01-0x04, reply tags 0x81-0x88 — disjoint ranges, so a
   stream fed to the wrong [next_*] entry point fails loudly instead of
   misparsing. Strings are length-prefixed: keys/scan bounds/messages
   with u16, values with u32. The payload length is computed before any
   byte is written (string lengths are known), so encoding is a single
   append pass into the caller's reused [Buffer.t] — no patching, no
   temporary buffer, no per-message allocation beyond what [Buffer]
   itself amortizes.

   The decoder is a growable flat accumulator with read/write cursors:
   [feed] appends (compacting consumed bytes first when space is
   needed), [next_*] parses at the read cursor only when a whole frame
   has arrived — so frames torn across reads at any byte boundary
   resume for free — and every field read is bounds-checked against the
   frame's declared payload, with under- and over-runs both reported as
   [Corrupt]. Framing carries no resync marker: after [Corrupt] the
   only safe move is dropping the connection, which is exactly what the
   server does. *)

open Spp_shard

let max_frame = 1 lsl 24
let max_key = 0xFFFF

(* Request tags. *)
let t_put = 0x01
let t_get = 0x02
let t_remove = 0x03
let t_scan = 0x04

(* Reply tags. *)
let t_done = 0x81
let t_value_some = 0x82
let t_value_none = 0x83
let t_removed_true = 0x84
let t_removed_false = 0x85
let t_scanned = 0x86
let t_failed_raised = 0x87
let t_failed_over = 0x88

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_char b (Char.unsafe_chr (v land 0xFF))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u16 b v;
  add_u16 b (v lsr 16)

let add_str16 b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let add_str32 b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let check_key what k =
  if String.length k > max_key then
    invalid_arg (Printf.sprintf "Wire: %s exceeds %d bytes" what max_key)

let check_frame n =
  if n > max_frame then
    invalid_arg (Printf.sprintf "Wire: frame payload %d exceeds %d" n max_frame)

(* corr + tag *)
let header_size = 5

let start_frame b ~corr psize =
  check_frame psize;
  add_u32 b psize;
  add_u32 b (corr land 0xFFFFFFFF)

let encode_request b ~corr (req : Serve.request) =
  match req with
  | Serve.Put { key; value } ->
    check_key "key" key;
    let psize =
      header_size + 2 + String.length key + 4 + String.length value
    in
    start_frame b ~corr psize;
    add_u8 b t_put;
    add_str16 b key;
    add_str32 b value
  | Serve.Get key ->
    check_key "key" key;
    start_frame b ~corr (header_size + 2 + String.length key);
    add_u8 b t_get;
    add_str16 b key
  | Serve.Remove key ->
    check_key "key" key;
    start_frame b ~corr (header_size + 2 + String.length key);
    add_u8 b t_remove;
    add_str16 b key
  | Serve.Scan { lo; hi; limit } ->
    check_key "scan bound" lo;
    check_key "scan bound" hi;
    start_frame b ~corr
      (header_size + 2 + String.length lo + 2 + String.length hi + 4);
    add_u8 b t_scan;
    add_str16 b lo;
    add_str16 b hi;
    add_u32 b (max 0 limit)

let encode_reply b ~corr (r : Serve.reply) =
  match r with
  | Serve.Done ->
    start_frame b ~corr header_size;
    add_u8 b t_done
  | Serve.Value (Some v) ->
    start_frame b ~corr (header_size + 4 + String.length v);
    add_u8 b t_value_some;
    add_str32 b v
  | Serve.Value None ->
    start_frame b ~corr header_size;
    add_u8 b t_value_none
  | Serve.Removed true ->
    start_frame b ~corr header_size;
    add_u8 b t_removed_true
  | Serve.Removed false ->
    start_frame b ~corr header_size;
    add_u8 b t_removed_false
  | Serve.Scanned kvs ->
    let body =
      List.fold_left
        (fun a (k, v) ->
          check_key "scan key" k;
          a + 2 + String.length k + 4 + String.length v)
        4 kvs
    in
    start_frame b ~corr (header_size + body);
    add_u8 b t_scanned;
    add_u32 b (List.length kvs);
    List.iter
      (fun (k, v) ->
        add_str16 b k;
        add_str32 b v)
      kvs
  | Serve.Failed (Serve.Op_raised msg) ->
    (* diagnostic text: truncate rather than refuse to answer *)
    let msg =
      if String.length msg > max_key then String.sub msg 0 max_key else msg
    in
    start_frame b ~corr (header_size + 2 + String.length msg);
    add_u8 b t_failed_raised;
    add_str16 b msg
  | Serve.Failed Serve.Failed_over ->
    start_frame b ~corr header_size;
    add_u8 b t_failed_over

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type decoder = {
  mutable dbuf : Bytes.t;
  mutable rpos : int;   (* first unconsumed byte *)
  mutable wpos : int;   (* first free byte *)
}

let decoder ?(initial = 4096) () =
  { dbuf = Bytes.create (max 16 initial); rpos = 0; wpos = 0 }

let buffered d = d.wpos - d.rpos

let feed d src ~off ~len =
  if len < 0 || off < 0 || off > Bytes.length src - len then
    invalid_arg "Wire.feed: bad slice";
  if Bytes.length d.dbuf - d.wpos < len then begin
    let live = d.wpos - d.rpos in
    (* compact first; grow only if the tail still doesn't fit *)
    if d.rpos > 0 then begin
      Bytes.blit d.dbuf d.rpos d.dbuf 0 live;
      d.rpos <- 0;
      d.wpos <- live
    end;
    if Bytes.length d.dbuf - live < len then begin
      let need = live + len in
      let cap = ref (Bytes.length d.dbuf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.dbuf 0 nb 0 live;
      d.dbuf <- nb
    end
  end;
  Bytes.blit src off d.dbuf d.wpos len;
  d.wpos <- d.wpos + len

let feed_string d s =
  feed d (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

type 'a popped =
  | Msg of int * 'a
  | Awaiting
  | Corrupt of string

(* Bounds-checked payload cursor. [Short] aborts the parse; it is
   translated to [Corrupt] — the frame length said the payload was
   complete, so running out of bytes inside it is a framing violation,
   not an incomplete read. *)
exception Short of string

type cursor = { cbuf : Bytes.t; mutable pos : int; limit : int }

let need c n what = if c.limit - c.pos < n then raise (Short what)

let get_u8 c what =
  need c 1 what;
  let v = Char.code (Bytes.unsafe_get c.cbuf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u16 c what =
  let lo = get_u8 c what in
  let hi = get_u8 c what in
  lo lor (hi lsl 8)

let get_u32 c what =
  let lo = get_u16 c what in
  let hi = get_u16 c what in
  lo lor (hi lsl 16)

let get_str c n what =
  need c n what;
  let s = Bytes.sub_string c.cbuf c.pos n in
  c.pos <- c.pos + n;
  s

let get_str16 c what = get_str c (get_u16 c what) what
let get_str32 c what = get_str c (get_u32 c what) what

let parse_request c : Serve.request =
  match get_u8 c "tag" with
  | t when t = t_put ->
    let key = get_str16 c "key" in
    let value = get_str32 c "value" in
    Serve.Put { key; value }
  | t when t = t_get -> Serve.Get (get_str16 c "key")
  | t when t = t_remove -> Serve.Remove (get_str16 c "key")
  | t when t = t_scan ->
    let lo = get_str16 c "scan lo" in
    let hi = get_str16 c "scan hi" in
    let limit = get_u32 c "scan limit" in
    Serve.Scan { lo; hi; limit }
  | t -> raise (Short (Printf.sprintf "unknown request tag 0x%02x" t))

let parse_reply c : Serve.reply =
  match get_u8 c "tag" with
  | t when t = t_done -> Serve.Done
  | t when t = t_value_some -> Serve.Value (Some (get_str32 c "value"))
  | t when t = t_value_none -> Serve.Value None
  | t when t = t_removed_true -> Serve.Removed true
  | t when t = t_removed_false -> Serve.Removed false
  | t when t = t_scanned ->
    let n = get_u32 c "scan count" in
    (* every entry costs >= 6 bytes of prefixes: a count beyond the
       remaining payload is hostile — reject before allocating *)
    if n < 0 || n > (c.limit - c.pos) / 6 then
      raise (Short "scan count exceeds payload");
    let acc = ref [] in
    for _ = 1 to n do
      let k = get_str16 c "scan key" in
      let v = get_str32 c "scan value" in
      acc := (k, v) :: !acc
    done;
    Serve.Scanned (List.rev !acc)
  | t when t = t_failed_raised ->
    Serve.Failed (Serve.Op_raised (get_str16 c "failure message"))
  | t when t = t_failed_over -> Serve.Failed Serve.Failed_over
  | t -> raise (Short (Printf.sprintf "unknown reply tag 0x%02x" t))

(* Peek the 4-byte length at [rpos] without a cursor (the frame is not
   yet known to be complete). *)
let peek_len d =
  let b i = Char.code (Bytes.unsafe_get d.dbuf (d.rpos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let next_with parse d =
  let avail = buffered d in
  if avail < 4 then Awaiting
  else begin
    let plen = peek_len d in
    if plen < header_size || plen > max_frame then
      Corrupt (Printf.sprintf "bad frame length %d" plen)
    else if avail < 4 + plen then Awaiting
    else begin
      let c = { cbuf = d.dbuf; pos = d.rpos + 4; limit = d.rpos + 4 + plen } in
      match
        let corr = get_u32 c "correlation id" in
        let v = parse c in
        if c.pos <> c.limit then raise (Short "trailing bytes in frame");
        (corr, v)
      with
      | corr, v ->
        d.rpos <- d.rpos + 4 + plen;
        if d.rpos = d.wpos then begin
          d.rpos <- 0;
          d.wpos <- 0
        end;
        Msg (corr, v)
      | exception Short what -> Corrupt ("malformed frame: " ^ what)
    end
  end

let next_request d = next_with parse_request d
let next_reply d = next_with parse_reply d
