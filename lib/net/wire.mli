(** Compact length-prefixed binary wire protocol for the serving stack.

    One frame per message, either direction:

    {v
      u32_le payload_length | u32_le correlation_id | u8 tag | fields
    v}

    Requests carry {!Spp_shard.Serve.request} values (Put/Get/Remove/
    Scan), replies carry {!Spp_shard.Serve.reply} values including the
    typed [Failed] shapes, so the wire vocabulary is exactly the serving
    pipeline's and the wire-vs-in-process differential can compare reply
    digests without any translation layer. Correlation ids are chosen by
    the client and echoed verbatim — replies may arrive out of request
    order (a cache-hit get overtakes queued mutations).

    Encoding appends frames to a caller-owned [Buffer.t] that is meant
    to be [Buffer.clear]ed and reused per send, so a steady-state sender
    allocates no fresh buffer per message. Decoding is resumable: a
    {!decoder} accumulates raw bytes across [feed] calls and yields one
    complete message per [next_*] call, tolerating frames torn across
    arbitrarily small reads (the tests feed one byte at a time). A
    malformed frame — bad length, unknown tag, truncated or oversized
    payload, trailing bytes — surfaces as [Corrupt], after which the
    connection must be dropped: framing cannot be resynchronized. *)

val max_frame : int
(** Hard upper bound on a frame payload (16 MiB). Lengths beyond it are
    rejected as [Corrupt] before any allocation, so a hostile length
    prefix cannot make the decoder allocate unboundedly. *)

val max_key : int
(** Keys (and scan bounds, and [Op_raised] messages) are length-prefixed
    with 16 bits: 65535 bytes. [encode_*] raises [Invalid_argument]
    beyond it; values use 32-bit lengths bounded by {!max_frame}. *)

val encode_request : Buffer.t -> corr:int -> Spp_shard.Serve.request -> unit
(** Append one request frame. [corr] is truncated to 32 bits. Raises
    [Invalid_argument] if a key exceeds {!max_key} or the frame would
    exceed {!max_frame}. *)

val encode_reply : Buffer.t -> corr:int -> Spp_shard.Serve.reply -> unit
(** Append one reply frame. [Op_raised] messages are truncated to
    {!max_key} bytes rather than rejected — the message is diagnostic. *)

type decoder
(** Resumable incremental frame parser: an internal growable byte
    accumulator plus read/write positions. Never blocks, never throws on
    wire data — malformed input is a [Corrupt] result. *)

val decoder : ?initial:int -> unit -> decoder
(** A fresh decoder ([initial] accumulator bytes, default 4096; grows as
    needed up to torn-frame size and is compacted as frames drain). *)

val feed : decoder -> Bytes.t -> off:int -> len:int -> unit
(** Append [len] raw bytes read from the peer. The bytes are copied, so
    the caller's read buffer can be reused immediately. *)

val feed_string : decoder -> string -> unit
(** [feed] from a string (tests and simple callers). *)

val buffered : decoder -> int
(** Bytes currently accumulated but not yet consumed by [next_*]. *)

type 'a popped =
  | Msg of int * 'a       (** (correlation id, message) *)
  | Awaiting              (** no complete frame buffered — read more *)
  | Corrupt of string     (** framing violated — close the connection *)

val next_request : decoder -> Spp_shard.Serve.request popped
(** Pop the next complete request frame, if any. Call in a loop until
    [Awaiting]. A reply tag on a request stream is [Corrupt]. *)

val next_reply : decoder -> Spp_shard.Serve.reply popped
(** Pop the next complete reply frame, if any. *)
