(** Socket front end over the serving pipeline.

    Listens on a TCP or Unix-domain socket and multiplexes pipelined
    {!Wire} requests into {!Spp_shard.Serve}'s per-shard mailboxes. Each
    accepted connection gets a reader and a writer domain:

    - the {b reader} decodes frames as they arrive and submits each
      request through [Serve.submit] immediately — requests pipeline
      into the shard mailboxes without waiting for earlier replies. A
      cache-hit [Get] (whose ticket [Serve.submit] pre-fulfils on the
      submitting thread, no worker hop) is written back right away,
      overtaking queued completions — replies are matched by correlation
      id, not order. A [Scan] executes as a whole-store
      [Serve.scan] on the reader (it has no routing key), serializing
      that one connection's pipeline behind it.
    - the {b writer} drains a per-connection completion queue of
      (correlation id, ticket) pairs, awaiting each ticket — tickets
      resolve in per-shard commit order, so a multi-shard pipeline
      completes out of submission order — and writes the reply frame.

    A malformed frame closes that connection only: the reader counts it,
    stops decoding and lets the writer flush the replies already owed;
    the serving pipeline and its worker domains are untouched. A request
    that cannot be submitted (e.g. the pipeline is stopping) is answered
    [Failed (Op_raised _)] instead of killing the connection.

    Lifecycle: {!stop} the server before [Serve.stop] if possible;
    either order is safe (tickets resolve during the pipeline drain, so
    writers never hang), but stopping the server first lets clients see
    every in-flight reply. *)

type t

type stats = {
  sv_accepted : int;    (** connections accepted *)
  sv_requests : int;    (** frames decoded and dispatched *)
  sv_replies : int;     (** reply frames written *)
  sv_malformed : int;   (** connections dropped on a corrupt frame *)
}

val parse_addr : string -> Unix.sockaddr
(** ["unix:PATH"], ["PORT"] (loopback TCP) or ["HOST:PORT"]. Raises
    [Invalid_argument] on anything else. *)

val pp_addr : Format.formatter -> Unix.sockaddr -> unit

val create : ?backlog:int -> Spp_shard.Serve.t -> Unix.sockaddr -> t
(** Bind, listen and start the accept domain. A Unix-domain path is
    unlinked first if stale; TCP sockets set [SO_REUSEADDR] and accept
    port 0 (see {!addr} for the bound port). [backlog] defaults to 64. *)

val addr : t -> Unix.sockaddr
(** The actually-bound address — the kernel-chosen port for TCP port 0. *)

val serve : t -> Spp_shard.Serve.t

val stats : t -> stats
(** Live monotone snapshot. *)

val stop : t -> unit
(** Close the listening socket, shut down every connection, join the
    accept/reader/writer domains and unlink a Unix-domain path.
    Idempotent. In-flight tickets are awaited and their replies flushed
    before each connection closes. *)
