(** Pipelined client for the {!Wire} protocol with connection pooling.

    A {!t} holds one or more connections to a {!Net_server}; each
    connection has a dedicated reader domain demultiplexing reply frames
    by correlation id into {!future}s. {!send} encodes onto one pooled
    connection (round-robin) and returns immediately — any number of
    requests can be in flight, and replies resolve out of order.

    Futures record their completion time ({!done_at}, a
    [Bench_util.now_mono] stamp taken by the reader domain the moment
    the reply frame is decoded), so an open-loop load generator can
    measure latency without itself blocking in {!await}.

    If a connection dies (EOF, write error, corrupt reply frame) every
    future pending on it resolves to [Failed (Op_raised "connection
    lost")] and subsequent sends on it fail the same way — a dead server
    yields typed failures, not hangs. *)

type t

type future

val connect : ?pool:int -> ?cork:bool -> Unix.sockaddr -> t
(** Open [pool] connections (default 1) to the server. Raises
    [Unix.Unix_error] if the server is unreachable.

    [cork] (default false) batches encoded request frames in the
    connection's buffer until ~8 KiB accumulate, {!await} blocks on one
    of its futures, or {!close} runs — collapsing the per-request
    [write] syscall under pipelined load. Leave it off for latency
    measurement: a corked send may sit in the buffer until the next
    flush point, which is exactly the send-time distortion an open-loop
    driver must not have. *)

val send : t -> Spp_shard.Serve.request -> future
(** Encode and write one request frame on the next pooled connection;
    returns a future resolving to its reply. Never blocks on the reply
    (it can block in [write] if the socket buffer is full — the server
    reader always drains, so this is bounded). *)

val peek : future -> Spp_shard.Serve.reply option
(** [Some r] once the reply has arrived, without blocking. *)

val await : t -> future -> Spp_shard.Serve.reply
(** Block until the reply arrives. *)

val done_at : future -> float
(** Monotonic time at which the reader decoded this future's reply.
    Meaningless (0.) before the future resolves. *)

val inflight : t -> int
(** Futures sent but not yet resolved, across the pool. *)

(* Blocking one-shot conveniences. *)
val put : t -> key:string -> value:string -> Spp_shard.Serve.reply
val get : t -> string -> Spp_shard.Serve.reply
val remove : t -> string -> Spp_shard.Serve.reply
val scan : t -> lo:string -> hi:string -> limit:int -> Spp_shard.Serve.reply

val close : t -> unit
(** Shut down the write sides (letting the server flush every reply
    still owed), drain the readers, close the sockets. Pending futures
    that never got a reply resolve to [Failed (Op_raised _)].
    Idempotent. *)
