(* Pooled, pipelined wire client. One reader domain per connection
   demultiplexes replies by correlation id; senders only ever touch the
   write side, so send/receive never contend on a socket. *)

open Spp_shard
open Spp_benchlib

type future = {
  fu_conn : conn;
  mutable fu_reply : Serve.reply option;
  mutable fu_done_at : float;
}

and conn = {
  k_fd : Unix.file_descr;
  k_cork : bool;                (* batch frames until flush/threshold *)
  k_wmu : Mutex.t;              (* serializes request frames *)
  k_wbuf : Buffer.t;            (* pending encoded frames, under [k_wmu] *)
  mutable k_scratch : Bytes.t;  (* reused write staging, under [k_wmu] *)
  k_pmu : Mutex.t;              (* guards pending/corr/alive *)
  k_done : Condition.t;
  k_pending : (int, future) Hashtbl.t;
  mutable k_corr : int;
  mutable k_alive : bool;
  mutable k_reader : unit Domain.t option;
}

type t = {
  nc_conns : conn array;
  nc_next : int Atomic.t;       (* round-robin cursor *)
  mutable nc_closed : bool;
}

let conn_lost = Serve.Failed (Serve.Op_raised "connection lost")

(* Resolve every pending future with [r]; used when the connection
   dies. Under [k_pmu]. *)
let fail_all_locked c r =
  let now = Bench_util.now_mono () in
  Hashtbl.iter
    (fun _ fu ->
      if fu.fu_reply = None then begin
        fu.fu_reply <- Some r;
        fu.fu_done_at <- now
      end)
    c.k_pending;
  Hashtbl.reset c.k_pending;
  c.k_alive <- false;
  Condition.broadcast c.k_done

let reader c =
  let buf = Bytes.create 65536 in
  let dec = Wire.decoder () in
  (try
     let running = ref true in
     while !running do
       let n = Unix.read c.k_fd buf 0 (Bytes.length buf) in
       if n = 0 then running := false
       else begin
         Wire.feed dec buf ~off:0 ~len:n;
         let popping = ref true in
         while !popping do
           match Wire.next_reply dec with
           | Wire.Awaiting -> popping := false
           | Wire.Corrupt _ ->
             popping := false;
             running := false
           | Wire.Msg (corr, r) ->
             let now = Bench_util.now_mono () in
             Mutex.lock c.k_pmu;
             (match Hashtbl.find_opt c.k_pending corr with
              | Some fu ->
                Hashtbl.remove c.k_pending corr;
                fu.fu_reply <- Some r;
                fu.fu_done_at <- now;
                Condition.broadcast c.k_done
              | None -> ());   (* stray corr: reply to a forgotten send *)
             Mutex.unlock c.k_pmu
         done
       end
     done
   with _ -> ());
  Mutex.lock c.k_pmu;
  fail_all_locked c conn_lost;
  Mutex.unlock c.k_pmu

let connect ?(pool = 1) ?(cork = false) addr =
  if pool < 1 then invalid_arg "Net_client.connect: pool must be >= 1";
  let mk () =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd addr;
       (match addr with
        | Unix.ADDR_INET _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
        | _ -> ())
     with e ->
       (try Unix.close fd with _ -> ());
       raise e);
    let c =
      { k_fd = fd; k_cork = cork; k_wmu = Mutex.create ();
        k_wbuf = Buffer.create 1024;
        k_scratch = Bytes.create 1024; k_pmu = Mutex.create ();
        k_done = Condition.create (); k_pending = Hashtbl.create 64;
        k_corr = 0; k_alive = true; k_reader = None }
    in
    c.k_reader <- Some (Domain.spawn (fun () -> reader c));
    c
  in
  { nc_conns = Array.init pool (fun _ -> mk ());
    nc_next = Atomic.make 0; nc_closed = false }

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

(* Corked connections let pending frames pile up to this many bytes
   before forcing a write; [await] flushes whatever is pending first, so
   a blocked caller never waits for requests that were never sent. *)
let cork_threshold = 8192

(* Under [k_wmu]. *)
let flush_locked c =
  let n = Buffer.length c.k_wbuf in
  if n > 0 then begin
    if Bytes.length c.k_scratch < n then
      c.k_scratch <- Bytes.create (max n (2 * Bytes.length c.k_scratch));
    Buffer.blit c.k_wbuf 0 c.k_scratch 0 n;
    Buffer.clear c.k_wbuf;
    write_all c.k_fd c.k_scratch 0 n
  end

let flush_conn c =
  try
    Mutex.lock c.k_wmu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock c.k_wmu)
      (fun () -> flush_locked c)
  with _ ->
    Mutex.lock c.k_pmu;
    fail_all_locked c conn_lost;
    Mutex.unlock c.k_pmu

let send_on c req =
  (* register before writing: the reply can arrive before [send]
     returns, and the reader must find the future *)
  Mutex.lock c.k_pmu;
  if not c.k_alive then begin
    Mutex.unlock c.k_pmu;
    { fu_conn = c; fu_reply = Some conn_lost;
      fu_done_at = Bench_util.now_mono () }
  end
  else begin
    let corr = c.k_corr land 0xFFFFFFFF in
    c.k_corr <- c.k_corr + 1;
    let fu = { fu_conn = c; fu_reply = None; fu_done_at = 0. } in
    Hashtbl.replace c.k_pending corr fu;
    Mutex.unlock c.k_pmu;
    (try
       Mutex.lock c.k_wmu;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock c.k_wmu)
         (fun () ->
           Wire.encode_request c.k_wbuf ~corr req;
           if (not c.k_cork) || Buffer.length c.k_wbuf >= cork_threshold then
             flush_locked c)
     with _ ->
       Mutex.lock c.k_pmu;
       fail_all_locked c conn_lost;
       Mutex.unlock c.k_pmu);
    fu
  end

let send t req =
  let n = Array.length t.nc_conns in
  let i = Atomic.fetch_and_add t.nc_next 1 in
  send_on t.nc_conns.(((i mod n) + n) mod n) req

let peek fu = fu.fu_reply

let await _t fu =
  match fu.fu_reply with
  | Some r -> r
  | None ->
    let c = fu.fu_conn in
    if c.k_cork then flush_conn c;
    Mutex.lock c.k_pmu;
    while fu.fu_reply = None do
      Condition.wait c.k_done c.k_pmu
    done;
    Mutex.unlock c.k_pmu;
    Option.get fu.fu_reply

let done_at fu = fu.fu_done_at

let inflight t =
  Array.fold_left
    (fun a c ->
      Mutex.lock c.k_pmu;
      let n = Hashtbl.length c.k_pending in
      Mutex.unlock c.k_pmu;
      a + n)
    0 t.nc_conns

let put t ~key ~value = await t (send t (Serve.Put { key; value }))
let get t k = await t (send t (Serve.Get k))
let remove t k = await t (send t (Serve.Remove k))
let scan t ~lo ~hi ~limit = await t (send t (Serve.Scan { lo; hi; limit }))

let close t =
  if not t.nc_closed then begin
    t.nc_closed <- true;
    (* half-close: the server drains, flushes every owed reply, then
       closes its side; our reader sees EOF after the last reply *)
    Array.iter
      (fun c ->
        if c.k_cork then flush_conn c;
        try Unix.shutdown c.k_fd Unix.SHUTDOWN_SEND with _ -> ())
      t.nc_conns;
    Array.iter
      (fun c ->
        Option.iter Domain.join c.k_reader;
        c.k_reader <- None;
        try Unix.close c.k_fd with _ -> ())
      t.nc_conns
  end
