(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VI). Run all experiments with `dune exec bench/main.exe`
   or a subset by name, e.g. `dune exec bench/main.exe -- fig4 table4`.
   `--quick` divides workload sizes by 10.

   Absolute numbers come from the simulator, not the authors' Optane
   testbed; what must match the paper is the *shape*: who wins, by
   roughly what factor, and where the outliers are. EXPERIMENTS.md
   records paper-vs-measured for every row. *)

open Spp_pmdk
open Spp_benchlib.Bench_util

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let sc n = if quick then max 1 (n / 10) else n

(* --json FILE: dump every emitted record as schema "spp-bench/1" (see
   EXPERIMENTS.md, "Benchmark methodology"). *)
let json_file =
  let rec find = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* --domains N: cap the scaleout experiment's domain counts (CI smoke
   runs with 2; the full ladder is 1, 2, 4, 8). *)
let domains_cap =
  let rec find = function
    | "--domains" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let jout = Spp_benchlib.Json_out.create ()

let jemit ~experiment ~name ~metric ?unit_ ?extra v =
  Spp_benchlib.Json_out.emit jout ~experiment ~name ~metric ?unit_ ?extra v

(* ------------------------------------------------------------------ *)
(* Fig. 4: persistent indices — insert/get/remove slowdowns            *)
(* ------------------------------------------------------------------ *)

let fig4_variants = [ Spp_access.Pmdk; Spp_access.Safepm; Spp_access.Spp ]

let index_pool_size = function
  | "rtree" -> 1 lsl 27
  | _ -> 1 lsl 26

let index_ops = function
  | "rtree" -> sc 4_000
  | _ -> sc 30_000

let run_index_workload variant index_name =
  Gc.full_major ();
  let n = index_ops index_name in
  let ks = keys ~seed:1 ~universe:(4 * n) n in
  let a =
    Spp_access.create ~pool_size:(index_pool_size index_name)
      ~name:index_name variant
  in
  let ix = Spp_indices.Indices.create index_name a in
  let t_insert, () =
    time (fun () ->
      Array.iter (fun k -> ix.Spp_indices.Indices.insert ~key:k ~value:k) ks)
  in
  let t_get, () =
    time (fun () ->
      Array.iter (fun k -> ignore (ix.Spp_indices.Indices.get k)) ks)
  in
  let t_remove, () =
    time (fun () ->
      Array.iter (fun k -> ignore (ix.Spp_indices.Indices.remove k)) ks)
  in
  (t_insert, t_get, t_remove)

let fig4 () =
  print_title "Figure 4: index throughput slowdown w.r.t. native PMDK";
  Printf.printf "(%d queries per operation type, 8-byte uniform keys)\n"
    (index_ops "ctree");
  print_row ~w:15
    ("index"
     :: List.concat_map
          (fun op ->
            List.map
              (fun v -> op ^ ":" ^ Spp_access.variant_name v)
              [ Spp_access.Safepm; Spp_access.Spp ])
          [ "ins"; "get"; "rem" ]);
  List.iter
    (fun index_name ->
      let results =
        List.map (fun v -> (v, run_index_workload v index_name)) fig4_variants
      in
      let bi, bg, br = List.assoc Spp_access.Pmdk results in
      let nops = float_of_int (index_ops index_name) in
      List.iter
        (fun (v, (ti, tg, tr)) ->
          let vn = Spp_access.variant_name v in
          List.iter
            (fun (op, t, b) ->
              let nm = Printf.sprintf "%s/%s/%s" index_name op vn in
              jemit ~experiment:"fig4" ~name:nm ~metric:"ns_per_op" ~unit_:"ns"
                (t /. nops *. 1e9);
              if v <> Spp_access.Pmdk then
                jemit ~experiment:"fig4" ~name:nm ~metric:"slowdown"
                  (slowdown ~baseline:b t))
            [ ("insert", ti, bi); ("get", tg, bg); ("remove", tr, br) ])
        results;
      let cells =
        List.concat_map
          (fun sel ->
            List.map
              (fun v ->
                let ti, tg, tr = List.assoc v results in
                let t, b =
                  match sel with
                  | `I -> (ti, bi)
                  | `G -> (tg, bg)
                  | `R -> (tr, br)
                in
                fmt_slowdown (slowdown ~baseline:b t))
              [ Spp_access.Safepm; Spp_access.Spp ])
          [ `I; `G; `R ]
      in
      print_row ~w:15 (index_name :: cells))
    [ "ctree"; "rbtree"; "rtree"; "hashmap_tx" ]

(* ------------------------------------------------------------------ *)
(* Fig. 5: pmemkv (cmap) — 4 workloads × thread counts                 *)
(* ------------------------------------------------------------------ *)

let fig5_threads = [ 1; 2; 4; 8; 16; 32 ]

let fig5 () =
  print_title "Figure 5: pmemkv slowdown w.r.t. native PMDK";
  let preload_keys = sc 3_000 and ops_per_thread = sc 1_500 in
  Printf.printf
    "(cmap engine, %d preloaded keys, 16 B keys / 1024 B values, %d \
     ops per logical thread)\n"
    preload_keys ops_per_thread;
  List.iter
    (fun workload ->
      print_subtitle (Spp_pmemkv.Db_bench.workload_name workload);
      let per_variant =
        List.map
          (fun v ->
            let a =
              Spp_access.create ~pool_size:(1 lsl 27)
                ~name:(Spp_access.variant_name v) v
            in
            let kv = Spp_pmemkv.Cmap.create a in
            Spp_pmemkv.Db_bench.preload kv ~keys:preload_keys;
            let times =
              List.map
                (fun threads ->
                  let r =
                    Spp_pmemkv.Db_bench.run kv ~threads ~ops_per_thread
                      ~universe:preload_keys workload
                  in
                  (* the median shard time is the robust per-thread cost
                     estimator under the logical-thread model *)
                  r.Spp_pmemkv.Db_bench.median_shard)
                fig5_threads
            in
            (v, times))
          fig4_variants
      in
      let base = List.assoc Spp_access.Pmdk per_variant in
      print_row ~w:10 ("threads" :: List.map string_of_int fig5_threads);
      List.iter
        (fun v ->
          if v <> Spp_access.Pmdk then begin
            let times = List.assoc v per_variant in
            print_row ~w:10
              (Spp_access.variant_name v
               :: List.map2
                    (fun t b -> fmt_slowdown (slowdown ~baseline:b t))
                    times base)
          end)
        fig4_variants)
    Spp_pmemkv.Db_bench.all_workloads

(* ------------------------------------------------------------------ *)
(* Fig. 6: Phoenix suite                                               *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_title "Figure 6: Phoenix benchmark suite slowdown w.r.t. native PMDK";
  Printf.printf "(PM port, 31 tag bits as in the paper)\n";
  print_row ~w:20 [ "application"; "safepm"; "spp" ];
  List.iter
    (fun app ->
      let scale = sc app.Spp_phoenix.Phx_apps.default_scale in
      let run v =
        let a =
          Spp_access.create ~tag_bits:31 ~pool_size:(1 lsl 26)
            ~name:app.Spp_phoenix.Phx_apps.app_name v
        in
        Gc.full_major ();
        time (fun () -> app.Spp_phoenix.Phx_apps.run a ~scale)
      in
      let tb, rb = run Spp_access.Pmdk in
      let ts, rs = run Spp_access.Safepm in
      let tp, rp = run Spp_access.Spp in
      assert (rb = rs && rb = rp);
      print_row ~w:20
        [ app.Spp_phoenix.Phx_apps.app_name;
          fmt_slowdown (slowdown ~baseline:tb ts);
          fmt_slowdown (slowdown ~baseline:tb tp) ])
    Spp_phoenix.Phx_apps.apps

(* ------------------------------------------------------------------ *)
(* Fig. 7: atomic and transactional PM management operations           *)
(* ------------------------------------------------------------------ *)

let fig7_sizes = [ 64; 256; 1024; 4096; 16384 ]
let fig7_ops = sc 4_000

let fig7_run mode =
  let results = Hashtbl.create 32 in
  List.iter
    (fun size ->
      Gc.compact ();
      let fresh_pool () =
        let space = Spp_sim.Space.create () in
        (* large enough for 4000 reallocs whose old blocks land in a
           different class and cannot be reused *)
        Pool.create space ~base:4096 ~size:(1 lsl 28) ~mode ~name:"ops"
      in
      let record name t = Hashtbl.replace results (size, name) t in
      (* atomic API *)
      let p = fresh_pool () in
      let oids = Array.make fig7_ops Oid.null in
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            oids.(i) <- Pool.alloc p ~size
          done)
      in
      record "atomic alloc" t;
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            oids.(i) <- Pool.realloc p oids.(i) ~size:(size * 3 / 2)
          done)
      in
      record "atomic realloc" t;
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            Pool.free_ p oids.(i)
          done)
      in
      record "atomic free" t;
      (* transactional API: one operation per transaction (pmembench) *)
      let p = fresh_pool () in
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            oids.(i) <- Pool.with_tx p (fun () -> Pool.tx_alloc p ~size)
          done)
      in
      record "tx alloc" t;
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            oids.(i) <-
              Pool.with_tx p (fun () ->
                Pool.tx_realloc p oids.(i) ~size:(size * 3 / 2))
          done)
      in
      record "tx realloc" t;
      let t, () =
        time (fun () ->
          for i = 0 to fig7_ops - 1 do
            Pool.with_tx p (fun () -> Pool.tx_free p oids.(i))
          done)
      in
      record "tx free" t)
    fig7_sizes;
  results

let fig7 () =
  print_title "Figure 7: PM management operations — SPP slowdown w.r.t. PMDK";
  Printf.printf "(%d operations per point)\n" fig7_ops;
  let native = fig7_run Mode.Native in
  let spp = fig7_run (Mode.Spp Spp_core.Config.default) in
  let ops =
    [ "atomic alloc"; "tx alloc"; "atomic free"; "tx free";
      "atomic realloc"; "tx realloc" ]
  in
  print_row ~w:16
    ("operation" :: List.map (fun s -> Printf.sprintf "%d B" s) fig7_sizes);
  List.iter
    (fun op ->
      let cells =
        List.map
          (fun size ->
            let b = Hashtbl.find native (size, op) in
            let t = Hashtbl.find spp (size, op) in
            fmt_slowdown (slowdown ~baseline:b t))
          fig7_sizes
      in
      print_row ~w:16 (op :: cells))
    ops

(* ------------------------------------------------------------------ *)
(* Table II: recovery time vs number of snapshotted PMEMoids           *)
(* ------------------------------------------------------------------ *)

let table2_counts =
  if quick then [ 100; 1000; 10_000 ]
  else [ 100; 1000; 10_000; 100_000; 1_000_000 ]

let table2_run mode n =
  Gc.compact ();
  let space = Spp_sim.Space.create () in
  let pool = Pool.create space ~base:4096 ~size:(1 lsl 28) ~mode ~name:"rec" in
  let oz = Pool.oid_stored_size pool in
  let slots = Pool.alloc pool ~size:(n * oz) in
  for i = 0 to n - 1 do
    let oid = Pool.alloc pool ~size:32 in
    Pool.store_oid pool ~off:(slots.Oid.off + (i * oz)) oid
  done;
  (* snapshot exclusively PMEMoids, then crash before commit *)
  Pool.tx_begin pool;
  for i = 0 to n - 1 do
    Pool.tx_add_range pool ~off:(slots.Oid.off + (i * oz)) ~len:oz
  done;
  Spp_sim.Memdev.crash (Pool.dev pool);
  let t, (_ : Pool.recovery_report) = time (fun () -> Pool.recover pool) in
  t

let table2 () =
  print_title "Table II: recovery time (ms) vs snapshotted PMEMoids";
  print_row ~w:14 ("variant" :: List.map string_of_int table2_counts);
  List.iter
    (fun (name, mode) ->
      let cells =
        List.map
          (fun n -> Printf.sprintf "%.2f" (1000. *. table2_run mode n))
          table2_counts
      in
      print_row ~w:14 (name :: cells))
    [ ("pmdk", Mode.Native); ("spp", Mode.Spp Spp_core.Config.default) ]

(* ------------------------------------------------------------------ *)
(* Table III: PM space overhead of SPP                                 *)
(* ------------------------------------------------------------------ *)

let table3 () =
  print_title "Table III: SPP PM space overhead (after insert + get)";
  print_row ~w:14 [ "index"; "pmdk"; "spp"; "overhead"; "pct" ];
  List.iter
    (fun index_name ->
      let bytes variant =
        let n = index_ops index_name / 2 in
        let ks = keys ~seed:1 ~universe:(4 * n) n in
        let a =
          Spp_access.create ~pool_size:(index_pool_size index_name)
            ~name:index_name variant
        in
        let ix = Spp_indices.Indices.create index_name a in
        Array.iter (fun k -> ix.Spp_indices.Indices.insert ~key:k ~value:k) ks;
        Array.iter (fun k -> ignore (ix.Spp_indices.Indices.get k)) ks;
        (Pool.heap_stats a.Spp_access.pool).Heap.allocated_bytes
      in
      let native = bytes Spp_access.Pmdk in
      let spp = bytes Spp_access.Spp in
      let over = spp - native in
      print_row ~w:14
        [ index_name; fmt_mb native; fmt_mb spp; fmt_mb over;
          fmt_pct (float_of_int over /. float_of_int native) ])
    [ "ctree"; "rbtree"; "rtree"; "hashmap_tx" ]

(* ------------------------------------------------------------------ *)
(* Table IV: RIPE attacks                                              *)
(* ------------------------------------------------------------------ *)

let table4 () =
  print_title "Table IV: RIPE attacks under different protection mechanisms";
  Printf.printf "(%d buffer-overflow attacks per row; see lib/ripe)\n"
    (List.length Spp_ripe.Ripe.all_attacks);
  print_row ~w:16 [ "variant"; "successful"; "prevented"; "failed" ];
  List.iter
    (fun r ->
      print_row ~w:16
        [ r.Spp_ripe.Ripe.row_name;
          string_of_int r.Spp_ripe.Ripe.successful;
          string_of_int r.Spp_ripe.Ripe.prevented;
          string_of_int r.Spp_ripe.Ripe.failed ])
    (Spp_ripe.Ripe.run_all ());
  Printf.printf
    "SPP blind spots (as in the paper): int2ptr laundering, uninstrumented \
     external writes, intra-object overflows.\n"

(* ------------------------------------------------------------------ *)
(* §VI-D: reproduced real bugs                                         *)
(* ------------------------------------------------------------------ *)

let bugs () =
  print_title "Section VI-D: reproduced bugs";
  let show name outcome =
    Printf.printf "%-46s %s\n" name
      (match outcome with
       | Spp_access.Prevented r -> "DETECTED (" ^ r ^ ")"
       | Spp_access.Ok_completed -> "not detected")
  in
  let btree variant =
    let a =
      Spp_access.create ~pool_size:(1 lsl 20)
        ~name:(Spp_access.variant_name variant) variant
    in
    let t = Spp_indices.Btree_map.create ~buggy:true a in
    let ix = Spp_indices.Indices.of_btree t in
    Spp_access.run_guarded (fun () ->
      for k = 1 to 7 do
        ix.Spp_indices.Indices.insert ~key:k ~value:k
      done;
      ignore (ix.Spp_indices.Indices.remove 1))
  in
  show "btree memmove overflow (pmdk#5333) / SPP" (btree Spp_access.Spp);
  show "btree memmove overflow (pmdk#5333) / PMDK" (btree Spp_access.Pmdk);
  let arr variant =
    let a =
      Spp_access.create ~pool_size:(1 lsl 16)
        ~name:(Spp_access.variant_name variant) variant
    in
    Spp_access.run_guarded (fun () ->
      Spp_ripe.Bug_repros.array_example ~buggy:true a)
  in
  show "PMDK array example realloc overflow / SPP" (arr Spp_access.Spp);
  show "PMDK array example realloc overflow / PMDK" (arr Spp_access.Pmdk);
  let sm variant =
    let a =
      Spp_access.create ~tag_bits:31 ~pool_size:(1 lsl 22)
        ~name:(Spp_access.variant_name variant) variant
    in
    Spp_access.run_guarded (fun () ->
      ignore (Spp_phoenix.Phx_apps.string_match ~buggy:true a ~scale:8192))
  in
  show "Phoenix string_match off-by-one / SPP" (sm Spp_access.Spp);
  show "Phoenix string_match off-by-one / PMDK" (sm Spp_access.Pmdk)

(* ------------------------------------------------------------------ *)
(* §VI-E: crash-consistency validation                                 *)
(* ------------------------------------------------------------------ *)

(* Raw consistency check of a recovered hashmap_tx image: the stored
   count must equal the number of entries reachable from the buckets. *)
let hashmap_consistent ~map_off pool' =
  let oz = Pool.oid_stored_size pool' in
  let count = Pool.load_word pool' ~off:map_off in
  let nbuckets = Pool.load_word pool' ~off:(map_off + 8) in
  let buckets = Pool.load_oid pool' ~off:(map_off + 16) in
  if Oid.is_null buckets || nbuckets <= 0 then false
  else begin
    let entries = ref 0 in
    (try
       for b = 0 to nbuckets - 1 do
         let rec walk slot_off depth =
           if depth > 10_000 then failwith "cycle";
           let oid = Pool.load_oid pool' ~off:slot_off in
           if not (Oid.is_null oid) then begin
             incr entries;
             walk (oid.Oid.off + 16) (depth + 1)
           end
         in
         walk (buckets.Oid.off + (b * oz)) 0
       done;
       ()
     with _ -> entries := -1);
    !entries = count
  end

let crashcheck () =
  print_title "Section VI-E: crash consistency (pmemcheck + pmreorder)";
  let n = sc 1_000 in
  List.iter
    (fun (mode_name, variant) ->
      List.iter
        (fun index_name ->
          let a =
            Spp_access.create ~pool_size:(index_pool_size index_name)
              ~name:index_name variant
          in
          let ix = Spp_indices.Indices.create index_name a in
          let (), report =
            Spp_pmemcheck.Pmemcheck.check_run a.Spp_access.pool (fun () ->
              let count = if index_name = "rtree" then n / 10 else n in
              for k = 1 to count do
                ix.Spp_indices.Indices.insert ~key:k ~value:k
              done;
              for k = 1 to count / 2 do
                ignore (ix.Spp_indices.Indices.remove k)
              done)
          in
          Printf.printf "pmemcheck %-6s %-12s %s [%s]\n" mode_name index_name
            (Format.asprintf "%a" Spp_pmemcheck.Pmemcheck.pp_report report)
            (if Spp_pmemcheck.Pmemcheck.is_clean report then "CLEAN"
             else "VIOLATIONS"))
        [ "ctree"; "rbtree"; "hashmap_tx" ])
    [ ("pmdk", Spp_access.Pmdk); ("spp", Spp_access.Spp) ];
  (* pmreorder over transactional index updates *)
  let a =
    Spp_access.create ~pool_size:(1 lsl 20) ~name:"reorder" Spp_access.Spp
  in
  let t = Spp_indices.Hashmap_tx.create a in
  Spp_indices.Hashmap_tx.insert t ~key:1 ~value:10;
  let map_off = (Spp_indices.Hashmap_tx.map_oid_of t).Oid.off in
  let result =
    Spp_pmemcheck.Pmreorder.explore ~pool:a.Spp_access.pool
      ~workload:(fun () ->
        Spp_indices.Hashmap_tx.insert t ~key:2 ~value:20;
        ignore (Spp_indices.Hashmap_tx.remove t 1))
      ~consistent:(hashmap_consistent ~map_off)
      ()
  in
  Printf.printf "pmreorder  spp    hashmap_tx   %s [%s]\n"
    (Format.asprintf "%a" Spp_pmemcheck.Pmreorder.pp_result result)
    (if result.Spp_pmemcheck.Pmreorder.failures = 0 then "CLEAN"
     else "VIOLATIONS")

(* ------------------------------------------------------------------ *)
(* Access amplification (ours): timing-free overhead evidence          *)
(* ------------------------------------------------------------------ *)

(* Counts, not clocks: how many PM loads/stores each variant issues for
   the same workload. Immune to scheduler noise, and it shows the
   mechanism directly: SafePM adds shadow loads on every access, SPP
   adds none (its checks are register arithmetic). *)
let counters () =
  print_title "Access amplification per variant (counts, not time)";
  let workload_ops = sc 5_000 in
  Printf.printf "(ctree: %d inserts + %d gets)
" workload_ops workload_ops;
  print_row ~w:16 [ "variant"; "pm loads"; "pm stores"; "hook calls" ];
  let baseline_loads = ref 0 in
  List.iter
    (fun v ->
      let a =
        Spp_access.create ~pool_size:(1 lsl 26)
          ~name:(Spp_access.variant_name v) v
      in
      let ix = Spp_indices.Indices.create "ctree" a in
      Spp_sim.Space.reset_stats a.Spp_access.space;
      Spp_core.Runtime.reset_counters ();
      for k = 1 to workload_ops do
        ix.Spp_indices.Indices.insert ~key:k ~value:k
      done;
      for k = 1 to workload_ops do
        ignore (ix.Spp_indices.Indices.get k)
      done;
      let st = Spp_sim.Space.stats a.Spp_access.space in
      let hooks =
        let c = Spp_core.Runtime.counters in
        c.Spp_core.Runtime.updatetag + c.Spp_core.Runtime.cleantag
        + c.Spp_core.Runtime.checkbound + c.Spp_core.Runtime.memintr_check
      in
      if v = Spp_access.Pmdk then baseline_loads := st.Spp_sim.Space.pm_loads;
      print_row ~w:16
        [ Spp_access.variant_name v;
          Printf.sprintf "%d (%.2fx)" st.Spp_sim.Space.pm_loads
            (float_of_int st.Spp_sim.Space.pm_loads
             /. float_of_int (max 1 !baseline_loads));
          string_of_int st.Spp_sim.Space.pm_stores;
          string_of_int hooks ])
    fig4_variants

(* ------------------------------------------------------------------ *)
(* Ablation: the compiler optimizations (ours)                         *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_title "Ablation: SPP compiler optimizations (miniature IR)";
  let open Spp_instr.Ir in
  let count = sc 20_000 in
  let prog =
    {
      main = "main";
      funcs =
        [
          {
            fname = "main";
            params = [];
            nregs = 16;
            body =
              [
                Pm_alloc { obj = 0; size = 8 * (count + 1) };
                Pm_direct { dst = 0; obj = 0 };
                Const { dst = 1; value = 7 };
                Gep { dst = 0; src = 0; off = -8 };
                Loop
                  {
                    count;
                    body =
                      [
                        Gep { dst = 0; src = 0; off = 8 };
                        Store { ptr = 0; value = 1; width = 8 };
                      ];
                  };
                (* volatile traffic that tracking should deinstrument *)
                Vheap_alloc { dst = 2; size = 4096 };
                Loop
                  {
                    count = count / 4;
                    body =
                      [
                        Store { ptr = 2; value = 1; width = 8 };
                        Load { dst = 3; ptr = 2; width = 8 };
                      ];
                  };
              ];
          };
        ];
    }
  in
  print_row ~w:28 [ "configuration"; "hook execs"; "time" ];
  List.iter
    (fun (name, options) ->
      let p, _ = Spp_instr.Passes.compile ~options prog in
      let m = Spp_instr.Interp.make_machine ~pool_size:(1 lsl 22) () in
      let t, () = time (fun () -> Spp_instr.Interp.run_program m p) in
      print_row ~w:28
        [ name; string_of_int m.Spp_instr.Interp.hook_execs; fmt_ms t ])
    [
      ("no optimizations",
       { Spp_instr.Passes.tracking = false; preemption = false });
      ("+ pointer tracking",
       { Spp_instr.Passes.tracking = true; preemption = false });
      ("+ bound-check preemption", Spp_instr.Passes.default_options);
    ]

(* ------------------------------------------------------------------ *)
(* Hook micro-costs via Bechamel                                       *)
(* ------------------------------------------------------------------ *)

let hook_microbench () =
  print_title "SPP hook micro-costs (Bechamel, ns/op)";
  let open Bechamel in
  let cfg = Spp_core.Config.default in
  let ptr = Spp_core.Encoding.mk_tagged cfg ~addr:0x1000 ~size:4096 in
  let tests =
    Test.make_grouped ~name:"hooks"
      [
        Test.make ~name:"updatetag"
          (Staged.stage (fun () -> Spp_core.Encoding.update_tag cfg ptr 8));
        Test.make ~name:"cleantag"
          (Staged.stage (fun () -> Spp_core.Encoding.clean_tag cfg ptr));
        Test.make ~name:"checkbound"
          (Staged.stage (fun () -> Spp_core.Encoding.check_bound cfg ptr 8));
        Test.make ~name:"gep"
          (Staged.stage (fun () -> Spp_core.Encoding.gep cfg ptr 8));
        Test.make ~name:"native add (baseline)"
          (Staged.stage (fun () -> Sys.opaque_identity (ptr + 8)));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let bcfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all bcfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-32s %8.2f ns/op\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Pipeline microbenchmark (ours): translate / flush / fence paths     *)
(* ------------------------------------------------------------------ *)

(* Before/after evidence for the fast-path refactor: address translation
   through the TLB-fronted sorted-array lookup, and the tracking-mode
   store/flush/fence pipeline under both engines. The List_based engine
   is the pre-refactor implementation kept selectable precisely for this
   comparison; the acceptance bar is >= 2x on the flush/fence-heavy
   workload. *)

let pipeline () =
  let open Spp_sim in
  print_title "Pipeline microbenchmark: translation TLB and tracking engines";
  (* -- translation: hot loads through the TLB, with decoy regions so the
        slow path has a real array to search -- *)
  let space = Space.create () in
  let psize = 1 lsl 22 in
  let dev = Memdev.create_persistent ~name:"pipe" psize in
  Space.map space ~base:4096 ~size:psize ~kind:Space.Persistent ~name:"pm" dev;
  for i = 0 to 7 do
    let d = Memdev.create_volatile ~name:(Printf.sprintf "v%d" i) 4096 in
    Space.map space ~base:((1 lsl 30) + (i * 8192)) ~size:4096
      ~kind:Space.Volatile ~name:(Printf.sprintf "v%d" i) d
  done;
  let n = sc 1_000_000 in
  Space.reset_stats space;
  let t_translate =
    best_of (fun () ->
      for i = 0 to n - 1 do
        (* 64 B stride over 2 MiB: sequential pages, TLB-friendly *)
        ignore (Space.load_word space (4096 + ((i land 0x7FFF) * 64)))
      done)
  in
  let st = Space.stats space in
  let hit_rate =
    float_of_int st.Space.tlb_hits
    /. float_of_int (max 1 (st.Space.tlb_hits + st.Space.tlb_misses))
  in
  let ns_translate = t_translate /. float_of_int n *. 1e9 in
  Printf.printf "translate+load        %8.1f ns/op   (TLB hit rate %s)\n"
    ns_translate (fmt_pct hit_rate);
  jemit ~experiment:"pipeline" ~name:"translate_load" ~metric:"ns_per_op"
    ~unit_:"ns"
    ~extra:[ ("tlb_hit_rate", Spp_benchlib.Json_out.J_float hit_rate) ]
    ns_translate;
  (* -- tracking engines: P stores to distinct cachelines, P flushes, one
        fence — the PMDK commit pattern. The list engine walks all
        pending stores on every flush (O(P^2) per round); the
        line-indexed engine touches only the flushed line's bucket. -- *)
  (* [lines] stays fixed even under --quick: the engines differ in
     per-round asymptotics, so shrinking the pending set would shrink the
     very effect being measured. Quick mode scales rounds only. *)
  let lines = 1024 in
  let rounds = sc 100 in
  let ops_per_run = rounds * ((2 * lines) + 1) in
  let bench_engine engine =
    let dev = Memdev.create_persistent ~name:"engine" (1 lsl 20) in
    Memdev.set_engine dev engine;
    Memdev.set_tracking dev true;
    best_of (fun () ->
      for _ = 1 to rounds do
        for i = 0 to lines - 1 do
          Memdev.store_word dev ~off:(i * 64) i
        done;
        for i = 0 to lines - 1 do
          Memdev.flush dev ~off:(i * 64) ~len:8
        done;
        Memdev.fence dev
      done)
  in
  let t_list = bench_engine Memdev.List_based in
  let t_indexed = bench_engine Memdev.Line_indexed in
  let ns_of t = t /. float_of_int ops_per_run *. 1e9 in
  let speedup = t_list /. t_indexed in
  Printf.printf
    "store/flush/fence     %8.1f ns/op (list engine, pre-refactor)\n"
    (ns_of t_list);
  Printf.printf "store/flush/fence     %8.1f ns/op (line-indexed engine)\n"
    (ns_of t_indexed);
  Printf.printf "engine speedup        %8.2fx %s\n" speedup
    (if speedup >= 2.0 then "(>= 2x: OK)" else "(below the 2x bar!)");
  jemit ~experiment:"pipeline" ~name:"flush_fence/list" ~metric:"ns_per_op"
    ~unit_:"ns" (ns_of t_list);
  jemit ~experiment:"pipeline" ~name:"flush_fence/line_indexed"
    ~metric:"ns_per_op" ~unit_:"ns" (ns_of t_indexed);
  jemit ~experiment:"pipeline" ~name:"flush_fence" ~metric:"speedup" speedup;
  (* -- hot path: engine gets and scans under the two read paths. The
        [Lease] path hoists the pointer check and region resolution into
        lease acquisition and reads each value in a single copy;
        [Copying] is the pre-lease reference kept selectable exactly for
        this comparison. Replies are gated bit-identical per engine
        before numbers are reported; pm_bytes_loaded per get quantifies
        the copy amplification the lease path removes. -- *)
  print_subtitle "hot path: uncached gets and scans, copying vs lease";
  let universe = sc 4_000 in
  let ngets = sc 40_000 in
  let nscans = sc 400 in
  (* load factor ~4 in both quick and full mode, so the chain walk the
     lease path accelerates is exercised the same way at either scale;
     1 KiB values are the YCSB record size *)
  let nbuckets = max 64 (universe / 4) in
  let value = String.make 1024 'v' in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  Printf.printf
    "(Spp variant, %d-key universe, %d B values, %d uncached gets, %d \
     scans of limit 64)\n"
    universe (String.length value) ngets nscans;
  print_row ~w:13
    [ "engine"; "path"; "ns/get"; "B loaded/get"; "ns/scan entry";
      "get speedup" ];
  List.iter
    (fun ename ->
      let spec =
        match Spp_pmemkv.Engines.of_name ename with
        | Some s -> s
        | None -> failwith ("unknown engine " ^ ename)
      in
      let run path =
        Gc.compact ();
        Spp_pmemkv.Engine.with_read_path path (fun () ->
          let a =
            Spp_access.create ~pool_size:(1 lsl 25) ~name:("hot-" ^ ename)
              Spp_access.Spp
          in
          let kv = Spp_pmemkv.Engine.create ~nbuckets spec a in
          for k = 0 to universe - 1 do
            Spp_pmemkv.Engine.put kv ~key:(key_of k) ~value
          done;
          let ks =
            Array.map key_of (keys ~seed:11 ~universe ngets)
          in
          let scan_of i =
            Spp_pmemkv.Engine.scan kv
              ~lo:(key_of (i * 37 mod universe))
              ~hi:"~" ~limit:64
          in
          (* digest pass: the identical-reply gate rides the exact key
             and scan streams the timed passes use *)
          let dig = ref 5381 in
          let mix v = dig := ((!dig * 131) + Hashtbl.hash v) land max_int in
          Array.iter (fun k -> mix (Spp_pmemkv.Engine.get kv k)) ks;
          let entries = ref 0 in
          for i = 0 to nscans - 1 do
            let l = scan_of i in
            entries := !entries + List.length l;
            List.iter mix l
          done;
          let space = Pool.space a.Spp_access.pool in
          let get_pass () =
            Array.iter (fun k -> ignore (Spp_pmemkv.Engine.get kv k)) ks
          in
          Space.reset_stats space;
          let t_first, () = time get_pass in
          let st = Space.stats space in
          let bytes_per_get =
            float_of_int st.Space.pm_bytes_loaded /. float_of_int ngets
          in
          let t_get = min t_first (best_of ~n:2 get_pass) in
          let t_scan =
            best_of (fun () ->
              for i = 0 to nscans - 1 do
                ignore (scan_of i)
              done)
          in
          ( !dig,
            t_get /. float_of_int ngets *. 1e9,
            bytes_per_get,
            t_scan /. float_of_int (max 1 !entries) *. 1e9 ))
      in
      let dig_c, ns_get_c, bytes_c, ns_scan_c =
        run Spp_pmemkv.Engine.Copying in
      let dig_l, ns_get_l, bytes_l, ns_scan_l =
        run Spp_pmemkv.Engine.Lease in
      let identical = dig_c = dig_l in
      if not identical then
        Printf.printf
          "!! %s: copying and lease replies DIVERGE — results invalid\n"
          ename;
      let get_speedup = ns_get_c /. Float.max ns_get_l 1e-9 in
      let scan_speedup = ns_scan_c /. Float.max ns_scan_l 1e-9 in
      (* Copy amplification of the copying path: every PM byte it loads
         is materialized into a fresh DRAM buffer, so bytes-loaded per
         get over the value size is how many bytes it copies per byte
         returned. The lease path copies the value exactly once; its
         bytes-loaded count whole leased windows (block-op accounting),
         not copies. *)
      let amplification = bytes_c /. float_of_int (String.length value) in
      print_row ~w:13
        [ ename; "copying"; Printf.sprintf "%.0f" ns_get_c;
          Printf.sprintf "%.0f" bytes_c; Printf.sprintf "%.1f" ns_scan_c;
          "1.00x" ];
      print_row ~w:13
        [ ename; "lease"; Printf.sprintf "%.0f" ns_get_l;
          Printf.sprintf "%.0f" bytes_l; Printf.sprintf "%.1f" ns_scan_l;
          Printf.sprintf "%.2fx %s" get_speedup
            (if get_speedup >= 2.0 then "(>= 2x: OK)"
             else "(below the 2x bar!)") ];
      Printf.printf
        "  %s copying loads+copies %.0f B/get for a %d B value (%.2fx copy \
         amplification); lease copies the value once (%.0f B/get windowed). \
         scan %.2fx\n"
        ename bytes_c (String.length value) amplification bytes_l
        scan_speedup;
      let nm what = Printf.sprintf "hotpath/%s/%s" ename what in
      jemit ~experiment:"pipeline" ~name:(nm "differential")
        ~metric:"identical"
        (if identical then 1. else 0.);
      jemit ~experiment:"pipeline" ~name:(nm "get/copying")
        ~metric:"ns_per_get" ~unit_:"ns"
        ~extra:[ ("pm_bytes_per_get", Spp_benchlib.Json_out.J_float bytes_c) ]
        ns_get_c;
      jemit ~experiment:"pipeline" ~name:(nm "get/lease")
        ~metric:"ns_per_get" ~unit_:"ns"
        ~extra:[ ("pm_bytes_per_get", Spp_benchlib.Json_out.J_float bytes_l) ]
        ns_get_l;
      jemit ~experiment:"pipeline" ~name:(nm "get") ~metric:"speedup"
        ~extra:
          [ ("copy_amplification", Spp_benchlib.Json_out.J_float amplification)
          ]
        get_speedup;
      jemit ~experiment:"pipeline" ~name:(nm "scan/copying")
        ~metric:"ns_per_scanned_entry" ~unit_:"ns" ns_scan_c;
      jemit ~experiment:"pipeline" ~name:(nm "scan/lease")
        ~metric:"ns_per_scanned_entry" ~unit_:"ns" ns_scan_l;
      jemit ~experiment:"pipeline" ~name:(nm "scan") ~metric:"speedup"
        scan_speedup)
    [ "cmap"; "btree" ]

(* ------------------------------------------------------------------ *)
(* Scaleout (ours): domain-parallel sharded serving vs logical shards   *)
(* ------------------------------------------------------------------ *)

(* Fig. 5's thread model runs logical shards sequentially; this
   experiment runs the same per-shard streams with one Domain per shard
   (shard-per-pool, see lib/shard) and reports the throughput ladder,
   the parallel-vs-sequential speedup, and uniform-vs-Zipfian skew.
   Every point first proves the two modes bit-identical on the same
   seed — a wrong-by-construction parallel path must not produce a
   throughput number. *)

let scaleout () =
  let open Spp_shard in
  print_title "Scaleout: domain-parallel sharded KV (shard-per-pool)";
  let domain_counts =
    let all = [ 1; 2; 4; 8 ] in
    match domains_cap with
    | None -> all
    | Some cap -> List.filter (fun d -> d <= max 1 cap) all
  in
  let preload_keys = sc 2_000 and total_ops = sc 24_000 in
  let seed = 42 in
  Printf.printf
    "(cmap engine under SPP, %d preloaded keys, %d routed ops, update-heavy; \
     %d core(s) recommended by the runtime)\n"
    preload_keys total_ops
    (Domain.recommended_domain_count ());
  let build nshards =
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 23) ~nshards
        Spp_access.Spp in
    Shard_bench.preload t ~keys:preload_keys;
    Shard.reset_stats t;
    t
  in
  let run_pair ~nshards ~dist workload =
    (* two identically constructed stores: an update-heavy stream
       mutates the store, so sequential and parallel must not share one *)
    let ops =
      Shard_bench.gen_ops ~seed ~ops:total_ops ~universe:preload_keys ~dist
        workload
    in
    let streams = Shard_bench.partition ~nshards ops in
    let t_seq = build nshards and t_par = build nshards in
    let rs = Shard_bench.run t_seq ~mode:Shard_bench.Sequential streams in
    let rp = Shard_bench.run t_par ~mode:Shard_bench.Parallel streams in
    let diverged =
      match Shard_bench.explain_divergence rs rp with
      | Some _ as why -> why
      | None ->
        if Shard.merged_stats t_seq <> Shard.merged_stats t_par then
          Some "op results agree but merged Space stats differ"
        else None
    in
    (match diverged with
     | None -> ()
     | Some why ->
       Printf.printf
         "!! parallel/sequential DIVERGENCE at %d shards (%s) — results \
          invalid\n   %s\n"
         nshards (Shard_bench.dist_name dist) why);
    (rs, rp, diverged = None)
  in
  print_row ~w:12
    [ "domains"; "seq op/s"; "par op/s"; "speedup"; "identical" ];
  List.iter
    (fun nd ->
      Gc.compact ();
      let rs, rp, agree =
        run_pair ~nshards:nd ~dist:Shard_bench.Uniform
          Spp_pmemkv.Db_bench.Update_heavy
      in
      let speedup = rs.Shard_bench.r_wall /. Float.max rp.Shard_bench.r_wall 1e-9 in
      print_row ~w:12
        [ string_of_int nd;
          fmt_ops rs.Shard_bench.r_throughput;
          fmt_ops rp.Shard_bench.r_throughput;
          fmt_slowdown speedup;
          (if agree then "yes" else "NO") ];
      let nm mode = Printf.sprintf "update_heavy/uniform/%d/%s" nd mode in
      jemit ~experiment:"scaleout" ~name:(nm "sequential") ~metric:"ops_per_s"
        ~unit_:"op/s" rs.Shard_bench.r_throughput;
      jemit ~experiment:"scaleout" ~name:(nm "parallel") ~metric:"ops_per_s"
        ~unit_:"op/s"
        ~extra:
          [ ("identical_to_sequential", Spp_benchlib.Json_out.J_bool agree) ]
        rp.Shard_bench.r_throughput;
      jemit ~experiment:"scaleout"
        ~name:(Printf.sprintf "update_heavy/uniform/%d" nd) ~metric:"speedup"
        speedup;
      if nd = 4 then
        Printf.printf "  4-domain speedup %.2fx %s\n" speedup
          (if speedup >= 2.0 then "(>= 2x: OK)"
           else "(below the 2x bar — needs >= 4 hardware cores)")
    )
    domain_counts;
  (* Uniform vs Zipfian under full parallelism: skew concentrates the
     hot keys on few shards, so the Zipfian ladder shows what a real
     skewed tenant does to the router. *)
  let nd = List.fold_left max 1 domain_counts in
  Gc.compact ();
  print_subtitle
    (Printf.sprintf "key-distribution skew at %d domains (parallel)" nd);
  print_row ~w:16 [ "distribution"; "par op/s"; "identical" ];
  List.iter
    (fun dist ->
      let _, rp, agree =
        run_pair ~nshards:nd ~dist Spp_pmemkv.Db_bench.Update_heavy
      in
      print_row ~w:16
        [ Shard_bench.dist_name dist;
          fmt_ops rp.Shard_bench.r_throughput;
          (if agree then "yes" else "NO") ];
      jemit ~experiment:"scaleout"
        ~name:
          (Printf.sprintf "update_heavy/%s/%d/parallel"
             (Shard_bench.dist_name dist) nd)
        ~metric:"ops_per_s" ~unit_:"op/s"
        ~extra:
          [ ("identical_to_sequential", Spp_benchlib.Json_out.J_bool agree) ]
        rp.Shard_bench.r_throughput)
    [ Shard_bench.Uniform; Shard_bench.Zipfian 0.99 ]

(* ------------------------------------------------------------------ *)
(* Serve (ours): async batched pipeline — group commit + latency        *)
(* ------------------------------------------------------------------ *)

(* Three parts. (1) Fence amortization, deterministic and timing-free:
   the sequential baseline chunked at each batch cap, fences/op from the
   Memdev counters, under both tracking engines — the acceptance bar is
   cap 32 <= 1/4 of cap 1. (2) Differential: the async pipeline in
   deterministic mode (fixed batching, pre-enqueued) must be
   bit-identical to that baseline before any live number is reported.
   (3) Live sweep: batch cap x offered load (per-client submission
   window) x shard count, with adaptive batching and per-request
   latency percentiles from the shard histograms. *)

let serve () =
  let open Spp_shard in
  let open Spp_benchlib in
  print_title "Serve: asynchronous batched pipeline (group-committed redo)";
  let shard_counts =
    let all = [ 1; 2; 4 ] in
    match domains_cap with
    | None -> all
    | Some cap -> List.filter (fun d -> d <= max 1 cap) all
  in
  let caps = [ 1; 8; 32 ] in
  let windows = [ 1; 64 ] in
  let universe = sc 2_000 in
  let total_ops = sc 16_000 in
  let value = String.make 256 'v' in
  Printf.printf
    "(cmap engine under SPP, %d-key universe, %d requests, 3:1 put:get, \
     256 B values)\n"
    universe total_ops;
  let gen_requests ~seed n =
    let st = Random.State.make [| seed; 0x5EFE |] in
    Array.init n (fun _ ->
      let key = Spp_pmemkv.Db_bench.key_of_int (Random.State.int st universe) in
      if Random.State.int st 4 = 3 then Serve.Get key
      else Serve.Put { key; value })
  in
  let partition ~nshards reqs =
    let buckets = Array.make nshards [] in
    Array.iter
      (fun r ->
        let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
        buckets.(s) <- r :: buckets.(s))
      reqs;
    Array.map (fun l -> Array.of_list (List.rev l)) buckets
  in
  let build ?(tracking = false) nshards =
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~nshards
        Spp_access.Spp in
    if tracking then
      for i = 0 to nshards - 1 do
        Spp_sim.Memdev.set_tracking
          (Pool.dev (Shard.shard_access (Shard.shard t i)).Spp_access.pool)
          true
      done;
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  (* -- part 1: fence amortization, both engines -- *)
  print_subtitle "group-commit fence amortization (sequential path, 2 shards)";
  print_row ~w:14
    ("engine" :: List.map (fun c -> Printf.sprintf "cap %d" c) caps
     @ [ "ratio 32/1" ]);
  let streams2 = partition ~nshards:2 (gen_requests ~seed:7 total_ops) in
  List.iter
    (fun (ename, engine) ->
      let fences_per_op cap =
        Spp_sim.Memdev.with_default_engine engine (fun () ->
          let t = build ~tracking:true 2 in
          ignore (Serve.run_sequential t ~batch_cap:cap streams2);
          let c = Shard.merged_counters t in
          ( float_of_int c.Spp_sim.Memdev.fences /. float_of_int total_ops,
            c ))
      in
      let per_cap = List.map (fun c -> (c, fences_per_op c)) caps in
      let f1 = fst (List.assoc 1 per_cap)
      and f32, c32 = List.assoc 32 per_cap in
      let ratio = f32 /. Float.max f1 1e-9 in
      print_row ~w:14
        (ename
         :: List.map (fun (_, (f, _)) -> Printf.sprintf "%.3f" f) per_cap
         @ [ Printf.sprintf "%.3f %s" ratio
               (if ratio <= 0.25 then "(<= 1/4: OK)" else "(above the bar!)") ]);
      List.iter
        (fun (cap, (f, (c : Spp_sim.Memdev.counters))) ->
          jemit ~experiment:"serve"
            ~name:(Printf.sprintf "amortization/%s/cap%d" ename cap)
            ~metric:"fences_per_op"
            ~extra:
              [ ("fences_saved", Json_out.J_int c.Spp_sim.Memdev.fences_saved);
                ("batched_ops", Json_out.J_int c.Spp_sim.Memdev.batched_ops) ]
            f)
        per_cap;
      jemit ~experiment:"serve"
        ~name:(Printf.sprintf "amortization/%s" ename)
        ~metric:"fence_ratio_32_vs_1" ratio;
      ignore c32)
    [ ("line_indexed", Spp_sim.Memdev.Line_indexed);
      ("list_based", Spp_sim.Memdev.List_based) ];
  (* -- part 2: async pipeline == sequential baseline, bit for bit -- *)
  let nd_max = List.fold_left max 1 shard_counts in
  let diff_cap = 16 in
  let streams = partition ~nshards:nd_max (gen_requests ~seed:7 total_ops) in
  let t_seq = build nd_max and t_par = build nd_max in
  let seq_replies = Serve.run_sequential t_seq ~batch_cap:diff_cap streams in
  let sv = Serve.create ~batch_cap:diff_cap ~adaptive:false ~autostart:false
      t_par in
  let tickets = Array.map (Array.map (Serve.submit sv)) streams in
  Serve.start sv;
  let par_replies = Array.map (Array.map (Serve.await sv)) tickets in
  Serve.stop sv;
  let identical =
    Array.for_all2
      (fun a b -> Serve.digest_replies a = Serve.digest_replies b)
      seq_replies par_replies
    && Shard.merged_stats t_seq = Shard.merged_stats t_par
    && Shard.merged_counters t_seq = Shard.merged_counters t_par
  in
  Printf.printf
    "async pipeline vs sequential baseline (%d shards, cap %d): %s\n" nd_max
    diff_cap
    (if identical then "bit-identical (replies, stats, counters)"
     else "!! DIVERGENCE — results invalid");
  jemit ~experiment:"serve" ~name:"differential" ~metric:"identical"
    (if identical then 1. else 0.);
  (* -- part 3: live sweep -- *)
  print_subtitle "live async sweep (adaptive batching, 2 client domains)";
  if quick then
    Printf.printf
      "(note: latency percentiles are meaningless under --quick; use a full \
       run)\n";
  print_row ~w:11
    [ "shards"; "cap"; "window"; "op/s"; "p50 us"; "mean us"; "p95 us";
      "p99 us"; "max us"; "avg batch"; "fences/op" ];
  let nclients = 2 in
  List.iter
    (fun nshards ->
      List.iter
        (fun cap ->
          List.iter
            (fun window ->
              Gc.compact ();
              let t = build ~tracking:true nshards in
              let sv = Serve.create ~batch_cap:cap t in
              let per_client =
                Array.init nclients (fun c ->
                  gen_requests ~seed:(100 + c) (total_ops / nclients))
              in
              let t0 = now_mono () in
              let feeders =
                Array.map
                  (fun reqs ->
                    Domain.spawn (fun () ->
                      let q = Queue.create () in
                      Array.iter
                        (fun r ->
                          if Queue.length q >= window then
                            ignore (Serve.await sv (Queue.pop q));
                          Queue.push (Serve.submit sv r) q)
                        reqs;
                      Queue.iter (fun tk -> ignore (Serve.await sv tk)) q))
                  per_client
              in
              Array.iter Domain.join feeders;
              let wall = now_mono () -. t0 in
              Serve.stop sv;
              let ops = Array.fold_left
                  (fun a r -> a + Array.length r) 0 per_client in
              let thr = float_of_int ops /. Float.max wall 1e-9 in
              let h = Serve.merged_hist sv in
              let us p = float_of_int (Histogram.percentile h p) /. 1e3 in
              let max_us = float_of_int (Histogram.max_value h) /. 1e3 in
              let batches = max 1 (Serve.total_batches sv) in
              let avg_batch = float_of_int ops /. float_of_int batches in
              let c = Shard.merged_counters t in
              let fpo =
                float_of_int c.Spp_sim.Memdev.fences /. float_of_int ops in
              let mean_us = Histogram.mean h /. 1e3 in
              print_row ~w:11
                [ string_of_int nshards; string_of_int cap;
                  string_of_int window; fmt_ops thr;
                  Printf.sprintf "%.1f" (us 50.);
                  Printf.sprintf "%.1f" mean_us;
                  Printf.sprintf "%.1f" (us 95.);
                  Printf.sprintf "%.1f" (us 99.);
                  Printf.sprintf "%.1f" max_us;
                  Printf.sprintf "%.1f" avg_batch;
                  Printf.sprintf "%.3f" fpo ];
              let nm what =
                Printf.sprintf "live/shards%d/cap%d/win%d/%s" nshards cap
                  window what
              in
              jemit ~experiment:"serve" ~name:(nm "throughput")
                ~metric:"ops_per_s" ~unit_:"op/s"
                ~extra:
                  [ ("avg_batch", Json_out.J_float avg_batch);
                    ("fences_per_op", Json_out.J_float fpo);
                    ("fences_saved",
                     Json_out.J_int c.Spp_sim.Memdev.fences_saved) ]
                thr;
              List.iter
                (fun p ->
                  jemit ~experiment:"serve"
                    ~name:(nm (Printf.sprintf "p%g" p))
                    ~metric:"latency_us" ~unit_:"us" (us p))
                [ 50.; 95.; 99. ];
              jemit ~experiment:"serve" ~name:(nm "mean") ~metric:"latency_us"
                ~unit_:"us" mean_us;
              jemit ~experiment:"serve" ~name:(nm "max") ~metric:"latency_us"
                ~unit_:"us" max_us)
            windows)
        caps)
    shard_counts

(* ------------------------------------------------------------------ *)
(* Read cache (ours): volatile DRAM cache over the serving stack       *)
(* ------------------------------------------------------------------ *)

(* Two parts. (1) Correctness gate, deterministic and timing-free: the
   same read-mostly streams through [run_sequential] on a cached and an
   uncached store must produce bit-identical replies, identical Memdev
   counters and identical per-shard durable images — the cache is
   volatile DRAM only, invisible to the persistence layer (gets stage no
   redo entries, fills come only from committed state, chunk boundaries
   sit at fixed request positions). A failed gate prints the divergence
   and no timing number is reported. (2) Live sweep: the async pipeline
   with the read fast path, distribution x shard count x capacity. Each
   point runs one warm pass (windowed, fills the cache) then one timed
   pass in which puts ride the async window but every get is a
   *dependent* point read — submitted and awaited before the client
   continues, the access pattern a read cache exists for. ns/get is that
   client-observed submit-to-reply time: cache-off stalls each read on
   the mailbox and group-commit round trip, a cache hit is answered on
   the submitting thread without entering the mailbox or walking PM.
   The acceptance bar is >= 2x ns/get on the Zipfian read-mostly point
   at the largest capacity vs cache-off. *)

let cache () =
  let open Spp_shard in
  let open Spp_benchlib in
  print_title "Read cache: volatile DRAM read cache over the serving stack";
  let shard_counts =
    let all = [ 1; 2 ] in
    match domains_cap with
    | None -> all
    | Some cap -> List.filter (fun d -> d <= max 1 cap) all
  in
  let universe = sc 2_000 in
  let total_ops = sc 24_000 in
  let value = String.make 256 'v' in
  Printf.printf
    "(cmap engine under SPP, %d-key universe, %d requests, 1:15 put:get, \
     256 B values)\n"
    universe total_ops;
  let dist_label = function
    | `Uniform -> "uniform"
    | `Zipfian -> "zipfian0.99"
  in
  let gen_requests ~seed ~dist n =
    let gen =
      match dist with
      | `Uniform -> Keygen.uniform ~seed ~universe
      | `Zipfian -> Keygen.zipfian ~theta:0.99 ~seed ~universe ()
    in
    let st = Random.State.make [| seed; 0xCAC4E |] in
    Array.init n (fun _ ->
      let key = Spp_pmemkv.Db_bench.key_of_int (Keygen.next gen) in
      if Random.State.int st 16 = 0 then Serve.Put { key; value }
      else Serve.Get key)
  in
  let partition ~nshards reqs =
    let buckets = Array.make nshards [] in
    Array.iter
      (fun r ->
        let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
        buckets.(s) <- r :: buckets.(s))
      reqs;
    Array.map (fun l -> Array.of_list (List.rev l)) buckets
  in
  let build ?(tracking = false) ~cache_cap nshards =
    let t =
      Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~cache_cap ~nshards
        Spp_access.Spp
    in
    if tracking then
      for i = 0 to nshards - 1 do
        Spp_sim.Memdev.set_tracking
          (Pool.dev (Shard.shard_access (Shard.shard t i)).Spp_access.pool)
          true
      done;
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  (* -- part 1: cache-on == cache-off, bit for bit -- *)
  let nd_diff = List.fold_left max 1 shard_counts in
  let streams =
    partition ~nshards:nd_diff
      (gen_requests ~seed:11 ~dist:`Zipfian total_ops)
  in
  let t_on = build ~tracking:true ~cache_cap:4096 nd_diff in
  let t_off = build ~tracking:true ~cache_cap:0 nd_diff in
  let r_on = Serve.run_sequential t_on ~batch_cap:16 streams in
  let r_off = Serve.run_sequential t_off ~batch_cap:16 streams in
  (* Bitwise image equality between two *distinct* pools is impossible
     by construction (each pool's uuid is embedded in the header and in
     every stored oid), so durable equivalence is checked the way a
     restart would: snapshot each shard's durable image, reopen it
     through recovery, reattach the map, and compare the full recovered
     contents. Identical Memdev counters (asserted below) already pin
     the two runs to the same store/flush/fence schedule. *)
  let durable_contents t =
    Array.init nd_diff (fun i ->
      let sh = Shard.shard t i in
      let live_kv = Shard.shard_kv sh in
      let img =
        Spp_sim.Memdev.durable_snapshot
          (Pool.dev (Shard.shard_access sh).Spp_access.pool)
      in
      let dev =
        Spp_sim.Memdev.of_image ~name:(Printf.sprintf "cache-diff%d" i) img
      in
      let space = Spp_sim.Space.create () in
      match Pool.open_dev space ~base:4096 dev with
      | Error _ -> None
      | Ok (pool', _report) ->
        let a' = Spp_access.attach (Pool.space pool') pool' in
        let map' =
          Spp_pmemkv.Engine.attach (Shard.engine t) a'
            ~root:(Spp_pmemkv.Engine.root_oid live_kv)
        in
        Some
          ( Spp_pmemkv.Engine.count_all map',
            List.init universe (fun k ->
              Spp_pmemkv.Engine.get map' (Spp_pmemkv.Db_bench.key_of_int k)) ))
  in
  let c_on = durable_contents t_on and c_off = durable_contents t_off in
  let durable_equal =
    Array.for_all Option.is_some c_on && c_on = c_off
  in
  let identical =
    Array.for_all2
      (fun a b -> Serve.digest_replies a = Serve.digest_replies b)
      r_on r_off
    && Shard.merged_counters t_on = Shard.merged_counters t_off
    && durable_equal
  in
  let rc_diff = Shard.merged_cache_stats t_on in
  Printf.printf
    "cache-on vs cache-off (sequential, %d shards, cap 4096): %s; cached run \
     hit rate %s\n"
    nd_diff
    (if identical then
       "bit-identical (replies, counters, recovered durable contents)"
     else "!! DIVERGENCE — results invalid")
    (fmt_pct (Spp_pmemkv.Rcache.hit_rate rc_diff));
  jemit ~experiment:"cache" ~name:"differential" ~metric:"identical"
    ~extra:
      [ ("hit_rate",
         Json_out.J_float (Spp_pmemkv.Rcache.hit_rate rc_diff));
        ("durable_images_equal", Json_out.J_bool durable_equal) ]
    (if identical then 1. else 0.);
  (* -- part 2: live sweep -- *)
  print_subtitle "live async sweep (read fast path, window 64)";
  if quick then
    Printf.printf
      "(note: ns/get is noisy under --quick; use a full run)\n";
  print_row ~w:13
    [ "dist"; "shards"; "cap"; "ns/get"; "hit rate"; "bypassed"; "vs off" ];
  let caps = [ 0; 512; 8192 ] in
  let max_cap = List.fold_left max 0 caps in
  let window = 64 in
  List.iter
    (fun dist ->
      List.iter
        (fun nshards ->
          let base_ns = ref 0. in
          List.iter
            (fun cap ->
              Gc.compact ();
              let t = build ~cache_cap:cap nshards in
              let reqs = gen_requests ~seed:21 ~dist total_ops in
              let ngets =
                Array.fold_left
                  (fun a r ->
                    match r with Serve.Get _ -> a + 1 | _ -> a)
                  0 reqs
              in
              let sv = Serve.create ~batch_cap:32 t in
              (* warm pass: everything windowed, fills the cache *)
              let q = Queue.create () in
              Array.iter
                (fun r ->
                  if Queue.length q >= window then
                    ignore (Serve.await sv (Queue.pop q));
                  Queue.push (Serve.submit sv r) q)
                reqs;
              Queue.iter (fun tk -> ignore (Serve.await sv tk)) q;
              Queue.clear q;
              Shard.reset_stats t;
              (* timed pass: puts ride the window, gets are dependent *)
              let t_get = ref 0. in
              Array.iter
                (fun r ->
                  match r with
                  | Serve.Get _ ->
                    let t0 = now_mono () in
                    ignore (Serve.await sv (Serve.submit sv r));
                    t_get := !t_get +. (now_mono () -. t0)
                  | _ ->
                    if Queue.length q >= window then
                      ignore (Serve.await sv (Queue.pop q));
                    Queue.push (Serve.submit sv r) q)
                reqs;
              Queue.iter (fun tk -> ignore (Serve.await sv tk)) q;
              Serve.stop sv;
              let rc = Shard.merged_cache_stats t in
              let hr = Spp_pmemkv.Rcache.hit_rate rc in
              let ns_get = !t_get /. float_of_int (max 1 ngets) *. 1e9 in
              if cap = 0 then base_ns := ns_get;
              let speedup = !base_ns /. Float.max ns_get 1e-9 in
              print_row ~w:13
                [ dist_label dist; string_of_int nshards; string_of_int cap;
                  Printf.sprintf "%.0f" ns_get;
                  (if cap = 0 then "-" else fmt_pct hr);
                  string_of_int (Serve.bypassed_gets sv);
                  (if cap = 0 then "1.00x"
                   else Printf.sprintf "%.2fx" speedup) ];
              let nm what =
                Printf.sprintf "%s/shards%d/cap%d/%s" (dist_label dist)
                  nshards cap what
              in
              jemit ~experiment:"cache" ~name:(nm "ns_per_get")
                ~metric:"ns_per_get" ~unit_:"ns"
                ~extra:
                  [ ("hit_rate", Json_out.J_float hr);
                    ("hits", Json_out.J_int rc.Spp_pmemkv.Rcache.rc_hits);
                    ("misses", Json_out.J_int rc.Spp_pmemkv.Rcache.rc_misses);
                    ("invalidations",
                     Json_out.J_int rc.Spp_pmemkv.Rcache.rc_invalidations);
                    ("bypassed_gets",
                     Json_out.J_int (Serve.bypassed_gets sv)) ]
                ns_get;
              if cap > 0 then
                jemit ~experiment:"cache" ~name:(nm "speedup")
                  ~metric:"speedup_vs_cache_off" speedup;
              if dist = `Zipfian && cap = max_cap
                 && nshards = List.fold_left max 1 shard_counts
              then
                Printf.printf "  zipfian ns/get improvement %.2fx %s\n"
                  speedup
                  (if speedup >= 2.0 then "(>= 2x: OK)"
                   else "(below the 2x bar!)"))
            caps)
        shard_counts)
    [ `Uniform; `Zipfian ]

(* ------------------------------------------------------------------ *)
(* Failover (ours): batch replication, primary kill and promotion      *)
(* ------------------------------------------------------------------ *)

(* Three parts. (1) Correctness gate, deterministic and timing-free: a
   crash-point enumeration of the replicated batch program (torture
   workload "kvfailover", plus its lossy-channel variant) must report
   zero invariant failures — the promoted replica serves a whole-op
   prefix that never leads cold recovery of the primary, lags it by at
   most one commit on a lossless channel, and holds every acked op. A
   failed gate prints the first failure and no timing number is valid.
   (2) Ack-policy sweep, steady state: the same Zipfian put/get load
   through the async pipeline with replication off / async / semi-sync
   / sync, reporting throughput, serving p99 and the replication-lag
   histogram — what each ack guarantee costs. (3) Kill + promote under
   load: drive half the requests, power the hot shard's device off,
   promote its replica (timed), drive the rest; reports whole-run
   throughput, p99, the typed-failure count and the promotion stall. *)

let failover () =
  let open Spp_shard in
  let open Spp_benchlib in
  print_title "Failover: batch replication, primary kill and promotion";
  (* -- part 1: correctness gate -- *)
  let gate_budget = if quick then 120 else max_int in
  let gate_reports =
    List.map
      (fun w -> Spp_torture.Torture.run ~budget:gate_budget w)
      [ Spp_torture.Workloads.kvfailover ~ops:8 ();
        Spp_torture.Workloads.kvfailover_drop ~ops:8 () ]
  in
  let gate_ok =
    List.for_all
      (fun r -> r.Spp_torture.Torture.r_invariant_failures = 0)
      gate_reports
  in
  List.iter
    (fun r ->
      Printf.printf "gate %s: %d crash points, %d invariant failures%s\n"
        r.Spp_torture.Torture.r_workload
        r.Spp_torture.Torture.r_crash_points
        r.Spp_torture.Torture.r_invariant_failures
        (match r.Spp_torture.Torture.r_first_failure with
         | None -> ""
         | Some (i, msg) -> Printf.sprintf " (first at %d: %s)" i msg);
      jemit ~experiment:"failover"
        ~name:("gate/" ^ r.Spp_torture.Torture.r_workload)
        ~metric:"identical"
        ~extra:
          [ ("crash_points",
             Json_out.J_int r.Spp_torture.Torture.r_crash_points) ]
        (if r.Spp_torture.Torture.r_invariant_failures = 0 then 1. else 0.))
    gate_reports;
  if not gate_ok then
    Printf.printf "!! GATE FAILED — timing numbers below are invalid\n";
  (* -- shared load shape -- *)
  let nshards =
    match domains_cap with Some c when c < 2 -> 1 | _ -> 2
  in
  let universe = sc 1_000 in
  let total_ops = sc 16_000 in
  let value = String.make 256 'v' in
  let window = 64 in
  Printf.printf
    "(%d shards, %d-key universe, %d requests, zipfian 0.99, 1:3 put:get, \
     256 B values, window %d)\n"
    nshards universe total_ops window;
  let gen_requests ~seed n =
    let gen = Keygen.zipfian ~theta:0.99 ~seed ~universe () in
    let st = Random.State.make [| seed; 0xFA170 |] in
    Array.init n (fun _ ->
      let key = Spp_pmemkv.Db_bench.key_of_int (Keygen.next gen) in
      if Random.State.int st 4 = 0 then Serve.Put { key; value }
      else Serve.Get key)
  in
  let build () =
    let t =
      Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~nshards
        Spp_access.Spp
    in
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  let drive sv reqs lo hi =
    let q = Queue.create () in
    for i = lo to hi - 1 do
      if Queue.length q >= window then ignore (Serve.await sv (Queue.pop q));
      Queue.push (Serve.submit sv reqs.(i)) q
    done;
    Queue.iter (fun tk -> ignore (Serve.await sv tk)) q
  in
  let us v = float_of_int v /. 1e3 in
  (* -- part 2: ack-policy sweep -- *)
  print_subtitle "ack-policy sweep (1 replica per shard, threaded appliers)";
  print_row ~w:12
    [ "policy"; "ops/s"; "p50 us"; "p99 us"; "lag p50 us"; "lag p99 us";
      "degraded" ];
  List.iter
    (fun policy ->
      Gc.compact ();
      let t = build () in
      let replication =
        Option.map
          (fun p ->
            { Replica.default_config with
              replicas = 1; policy = p; threaded = true })
          policy
      in
      let sv = Serve.create ~batch_cap:32 ?replication t in
      let reqs = gen_requests ~seed:31 total_ops in
      let dt, () = time (fun () -> drive sv reqs 0 total_ops) in
      Serve.stop sv;
      let h = Serve.merged_hist sv in
      let lag = Serve.replication_lag sv in
      let degraded =
        List.fold_left
          (fun a s -> a + s.Replica.rs_degraded_acks)
          0
          (Serve.replication_stats sv)
      in
      let label =
        match policy with
        | None -> "off"
        | Some p -> Replica.ack_policy_to_string p
      in
      let tp = float_of_int total_ops /. dt in
      print_row ~w:12
        [ label; Printf.sprintf "%.0f" tp;
          Printf.sprintf "%.1f" (us (Histogram.p50 h));
          Printf.sprintf "%.1f" (us (Histogram.p99 h));
          (if policy = None then "-"
           else Printf.sprintf "%.1f" (us (Histogram.p50 lag)));
          (if policy = None then "-"
           else Printf.sprintf "%.1f" (us (Histogram.p99 lag)));
          (if policy = None then "-" else string_of_int degraded) ];
      jemit ~experiment:"failover" ~name:("policy/" ^ label ^ "/throughput")
        ~metric:"ops_per_s" ~unit_:"op/s"
        ~extra:
          [ ("p50_us", Json_out.J_float (us (Histogram.p50 h)));
            ("p99_us", Json_out.J_float (us (Histogram.p99 h)));
            ("degraded_acks", Json_out.J_int degraded) ]
        tp;
      if policy <> None then
        jemit ~experiment:"failover" ~name:("policy/" ^ label ^ "/lag")
          ~metric:"lag_us" ~unit_:"us"
          ~extra:
            [ ("p99_us", Json_out.J_float (us (Histogram.p99 lag)));
              ("commits", Json_out.J_int (Histogram.count lag)) ]
          (us (Histogram.p50 lag)))
    [ None; Some Replica.Async; Some Replica.Semi_sync; Some Replica.Sync ];
  (* -- part 3: kill + promote under load -- *)
  print_subtitle "kill + promote mid-run (semi-sync, 1 replica per shard)";
  Gc.compact ();
  let t = build () in
  let sv =
    Serve.create ~batch_cap:32
      ~replication:
        { Replica.default_config with
          replicas = 1; policy = Replica.Semi_sync; threaded = true }
      t
  in
  let reqs = gen_requests ~seed:41 total_ops in
  let half = total_ops / 2 in
  let burst = min (2 * window) (total_ops - half) in
  let dt, promote_s =
    time (fun () ->
      drive sv reqs 0 half;
      (* the window is drained: the worker is idle, kill its device *)
      Spp_sim.Memdev.power_off
        (Pool.dev (Shard.shard_access (Shard.shard t 0)).Spp_access.pool);
      (* drain a burst against the dead primary before promoting: its
         share of these tickets must resolve [Failed Failed_over], not
         hang, while the other shard keeps serving.  (Requests still
         queued when the promotion lands would instead execute on the
         promoted stack — awaiting here pins the drains to the dead
         device so the typed-failure path is what gets measured.) *)
      let in_flight =
        Array.init burst (fun j -> Serve.submit sv reqs.(half + j))
      in
      Array.iter (fun tk -> ignore (Serve.await sv tk)) in_flight;
      let p_dt, _p = time (fun () -> Serve.promote sv 0) in
      drive sv reqs (half + burst) total_ops;
      p_dt)
  in
  Serve.stop sv;
  let h = Serve.merged_hist sv in
  let failed = Serve.total_failed sv in
  let tp = float_of_int total_ops /. dt in
  Printf.printf
    "whole run: %.0f op/s, p50 %.1f us, p99 %.1f us; promotion stall %.2f \
     ms; %d tickets failed typed; %d promotion(s)\n"
    tp
    (us (Histogram.p50 h))
    (us (Histogram.p99 h))
    (promote_s *. 1e3) failed (Serve.promotions sv);
  jemit ~experiment:"failover" ~name:"kill/throughput" ~metric:"ops_per_s"
    ~unit_:"op/s"
    ~extra:
      [ ("p50_us", Json_out.J_float (us (Histogram.p50 h)));
        ("p99_us", Json_out.J_float (us (Histogram.p99 h)));
        ("failed_tickets", Json_out.J_int failed);
        ("promotions", Json_out.J_int (Serve.promotions sv)) ]
    tp;
  jemit ~experiment:"failover" ~name:"kill/promotion_stall" ~metric:"ms"
    ~unit_:"ms" (promote_s *. 1e3)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Scan: ordered ranges through the engine seam                        *)
(* ------------------------------------------------------------------ *)

(* YCSB-E-shaped range scans against both engines behind the serve
   pipeline: 95% short scans (16-key spans through [Serve.scan]'s
   scatter-gather) and 5% inserts, against a point-get baseline on an
   identically built store. Per engine, no number is reported until the
   async pipeline is bit-identical to the sequential baseline over
   scan-bearing streams — the same differential the tier-1 tests pin,
   re-run here at bench scale. *)
let scan_bench () =
  let open Spp_shard in
  let open Spp_benchlib in
  print_title "Scan: ordered ranges through the engine seam (YCSB-E shape)";
  let nshards = 4 in
  let universe = sc 8_000 in
  let total_ops = sc 6_000 in
  let span = 16 and lim = 16 in
  let value = String.make 256 'v' in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  Printf.printf
    "(%d keys preloaded, %d ops, 95%% scans of %d-key spans / 5%% inserts, \
     %d shards)\n"
    universe total_ops span nshards;
  let engines =
    [ ("cmap", Spp_pmemkv.Engines.cmap); ("btree", Spp_pmemkv.Engines.btree) ]
  in
  let build engine =
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~engine ~nshards
        Spp_access.Spp in
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  (* -- gate: async = sequential over scan-bearing streams -- *)
  let gate engine =
    let ops = sc 4_000 in
    let st = Random.State.make [| 0x5CA7 |] in
    let reqs =
      Array.init ops (fun _ ->
        let k = key_of (Random.State.int st universe) in
        match Random.State.int st 10 with
        | 0 | 1 -> Serve.Put { key = k; value }
        | 2 -> Serve.Remove k
        | _ -> Serve.Get k)
    in
    let buckets = Array.make nshards [] in
    Array.iter
      (fun r ->
        let sh = Shard.shard_of_key ~nshards (Serve.request_key r) in
        buckets.(sh) <- r :: buckets.(sh))
      reqs;
    (* scans carry no routing key: splice one into each shard stream
       every 40 requests, windows sliding deterministically *)
    let streams =
      Array.map
        (fun l ->
          let arr = Array.of_list (List.rev l) in
          let out = ref [] in
          Array.iteri
            (fun i r ->
              if i mod 40 = 39 then begin
                let lo = i * 37 mod (universe - span) in
                out :=
                  Serve.Scan
                    { lo = key_of lo; hi = key_of (lo + span - 1);
                      limit = lim }
                  :: !out
              end;
              out := r :: !out)
            arr;
          Array.of_list (List.rev !out))
        buckets
    in
    let t_seq = build engine and t_par = build engine in
    let seq = Serve.run_sequential t_seq ~batch_cap:16 streams in
    let sv = Serve.create ~batch_cap:16 ~adaptive:false ~autostart:false t_par in
    let tickets =
      Array.mapi
        (fun i stream -> Array.map (fun r -> Serve.submit_to sv i r) stream)
        streams
    in
    Serve.start sv;
    let par = Array.map (Array.map (fun tk -> Serve.await sv tk)) tickets in
    Serve.stop sv;
    let digests_ok = ref true in
    Array.iteri
      (fun i sr ->
        if Serve.digest_replies sr <> Serve.digest_replies par.(i) then
          digests_ok := false)
      seq;
    !digests_ok && Shard.merged_counters t_seq = Shard.merged_counters t_par
  in
  print_subtitle "gate: async = sequential over scan-bearing streams";
  let gated =
    List.map
      (fun (nm, engine) ->
        let ok = gate engine in
        Printf.printf "  %-8s %s\n" nm
          (if ok then "bit-identical (replies + Memdev counters)"
           else "!! DIVERGENCE -- engine skipped");
        jemit ~experiment:"scan" ~name:(nm ^ "/differential")
          ~metric:"identical"
          (if ok then 1. else 0.);
        (nm, engine, ok))
      engines
  in
  (* -- measurement -- *)
  print_subtitle
    (Printf.sprintf "YCSB-E (95%% scans, span %d) vs point-get baseline" span);
  if quick then
    print_endline
      "(note: latency percentiles are meaningless under --quick; use a full \
       run)";
  print_row ~w:13
    [ "engine"; "scans/s"; "p50 us"; "p99 us"; "ns/entry"; "base get/s" ];
  List.iter
    (fun (nm, engine, ok) ->
      if ok then begin
        Gc.compact ();
        let t = build engine in
        let sv = Serve.create ~batch_cap:32 t in
        let st = Random.State.make [| 0xE5CA |] in
        let hist = Histogram.create () in
        let nscans = ref 0 and entries = ref 0 and t_scan = ref 0. in
        let wall, () =
          time (fun () ->
            for _ = 1 to total_ops do
              if Random.State.int st 100 < 5 then
                ignore
                  (Serve.await sv
                     (Serve.submit sv
                        (Serve.Put
                           { key = key_of (Random.State.int st universe);
                             value })))
              else begin
                let lo = Random.State.int st (universe - span) in
                let s0 = now_mono () in
                (match
                   Serve.scan sv ~lo:(key_of lo) ~hi:(key_of (lo + span - 1))
                     ~limit:lim
                 with
                 | Ok kvs ->
                   incr nscans;
                   entries := !entries + List.length kvs
                 | Error _ -> ());
                let dt = now_mono () -. s0 in
                t_scan := !t_scan +. dt;
                Histogram.add hist (int_of_float (dt *. 1e9))
              end
            done)
        in
        Serve.stop sv;
        (* point-get baseline: the same request count, all point gets,
           on a fresh identically preloaded store *)
        let tb = build engine in
        let svb = Serve.create ~batch_cap:32 tb in
        let stb = Random.State.make [| 0xE5CB |] in
        let wall_b, () =
          time (fun () ->
            for _ = 1 to !nscans do
              ignore
                (Serve.await svb
                   (Serve.submit svb
                      (Serve.Get (key_of (Random.State.int stb universe)))))
            done)
        in
        Serve.stop svb;
        ignore wall;
        let scans_s = float_of_int !nscans /. Float.max !t_scan 1e-9 in
        let ns_entry =
          if !entries = 0 then 0.
          else !t_scan *. 1e9 /. float_of_int !entries
        in
        let gets_s = float_of_int !nscans /. Float.max wall_b 1e-9 in
        let us p = float_of_int (Histogram.percentile hist p) /. 1e3 in
        print_row ~w:13
          [ nm; Printf.sprintf "%.0f" scans_s;
            Printf.sprintf "%.1f" (us 50.); Printf.sprintf "%.1f" (us 99.);
            Printf.sprintf "%.0f" ns_entry; Printf.sprintf "%.0f" gets_s ];
        jemit ~experiment:"scan" ~name:(nm ^ "/ycsb_e")
          ~metric:"scans_per_s" ~unit_:"scan/s"
          ~extra:
            [ ("p50_us", Json_out.J_float (us 50.));
              ("p99_us", Json_out.J_float (us 99.));
              ("ns_per_scanned_entry", Json_out.J_float ns_entry);
              ("scanned_entries", Json_out.J_int !entries);
              ("scans", Json_out.J_int !nscans) ]
          scans_s;
        jemit ~experiment:"scan" ~name:(nm ^ "/point_get_baseline")
          ~metric:"ops_per_s" ~unit_:"op/s" gets_s
      end)
    gated

(* ------------------------------------------------------------------ *)
(* Reshard (ours): slot migration + rebalancer under a moving hotspot  *)
(* ------------------------------------------------------------------ *)

(* Two parts. (1) Correctness gate, deterministic and timing-free: one
   key-routed request stream executed on a static slot table and again
   with slot migrations forced mid-stream must produce bit-identical
   replies and the same surviving store. (2) Migration storm: a
   rotating-hotspot Zipfian read-heavy stream served in windows, static
   router vs rebalancer ticking between windows (with traffic still
   queued, so migrations run under load). Aggregate throughput is
   modelled as total ops over the summed per-window critical path
   (max over shards of that window's [run_batch] seconds) — the wall
   clock a host with >= nshards cores would see, measurable even on one
   core; the wall clock of this host is reported alongside. *)
let reshard () =
  let open Spp_shard in
  let open Spp_benchlib in
  print_title "Reshard: live slot migration + hot-slot rebalancer";
  let nshards = 4 in
  let universe = 256 in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  let value = String.make 256 'v' in
  let build () =
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~nshards
        Spp_access.Spp in
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  (* -- part 1: migration differential gate -- *)
  let gate_ops = sc 6_000 in
  let gen_gate () =
    let st = Random.State.make [| 0x7E5A |] in
    Array.init gate_ops (fun i ->
      let key = key_of (Random.State.int st universe) in
      match i mod 5 with
      | 0 | 1 -> Serve.Put { key; value = Printf.sprintf "g%06d" i }
      | 2 -> Serve.Remove key
      | _ -> Serve.Get key)
  in
  let hot_keys = [ key_of 1; key_of 17; key_of 33 ] in
  let run_gate ~migrate =
    let t = build () in
    let sv = Serve.create ~batch_cap:16 ~adaptive:false t in
    let reqs = gen_gate () in
    let tks = Array.make gate_ops None in
    let submit_range lo hi =
      for i = lo to hi - 1 do
        tks.(i) <- Some (Serve.submit sv reqs.(i))
      done
    in
    let move k =
      let slot = Shard.slot_of t k in
      ignore
        (Serve.migrate_slot sv ~slot
           ~dst:((Shard.route t k + 1) mod nshards))
    in
    submit_range 0 (gate_ops / 3);
    if migrate then List.iter move hot_keys;
    submit_range (gate_ops / 3) (2 * gate_ops / 3);
    if migrate then List.iter move hot_keys;
    submit_range (2 * gate_ops / 3) gate_ops;
    let replies = Array.map (fun tk -> Serve.await sv (Option.get tk)) tks in
    Serve.stop sv;
    (t, Serve.digest_replies replies, Serve.migrations sv)
  in
  let (t_st, d_st, _) = run_gate ~migrate:false in
  let (t_mg, d_mg, nmig) = run_gate ~migrate:true in
  let identical =
    d_st = d_mg && Shard.count_all t_st = Shard.count_all t_mg
  in
  Printf.printf
    "migration differential (%d ops, %d forced migrations): %s\n" gate_ops
    nmig
    (if identical then "bit-identical replies, same surviving store"
     else "!! DIVERGENCE — results invalid");
  jemit ~experiment:"reshard" ~name:"differential" ~metric:"identical"
    (if identical then 1. else 0.);
  (* -- part 2: migration storm under a rotating hotspot -- *)
  let total_ops = sc 48_000 in
  (* quick mode keeps windows large enough (~480 ops) for the load
     signal to rise above sampling noise; the full run gets 8 epochs of
     6 windows, quick a 2-epoch smoke *)
  let nwindows = if quick then 10 else 48 in
  let nepochs = if quick then 2 else 8 in
  let window_ops = total_ops / nwindows in
  let period = total_ops / nepochs in
  let theta = 0.9 and storm_universe = 64 in
  let gen_storm () =
    let gen =
      Keygen.rotating ~theta ~seed:31 ~universe:storm_universe ~period ()
    in
    let coin = Random.State.make [| 31; 0x0A1D |] in
    Array.init total_ops (fun _ ->
      let key = key_of (Keygen.next gen) in
      if Random.State.int coin 10 = 0 then Serve.Put { key; value }
      else Serve.Get key)
  in
  Printf.printf
    "(storm: %d ops in %d windows, rotating zipfian %.2f over %d keys, \
     period %d, 9:1 get:put; 1-core hosts: model throughput = ops / summed \
     per-window critical path)\n"
    total_ops nwindows theta storm_universe period;
  let run_storm ~nshards ~rebalance =
    Gc.compact ();
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~nshards
        Spp_access.Spp in
    Shard_bench.preload t ~keys:storm_universe;
    Shard.reset_stats t;
    let sv = Serve.create ~batch_cap:32 t in
    let rb =
      if rebalance then
        let cfg =
          { Rebalance.min_ratio = 1.3;
            min_ops = max 16 (window_ops / 16);
            persist = 1; cooldown = 0; moves_per_tick = 16 }
        in
        Some (Rebalance.create ~cfg sv)
      else None
    in
    let reqs = gen_storm () in
    (* Critical path in op units: per window, the bottleneck shard's
       executed-op delta (which includes any migration copy traffic it
       absorbed). Op counts are immune to the scheduler noise a 1-core
       host injects into wall-clock busy sampling — with more domains
       than cores, a preempted drain charges a whole timeslice to a
       microsecond batch. Time conversion happens later with one per-op
       cost calibrated from the static run, identical for both routers. *)
    let critical_ops = ref 0 in
    let t0 = now_mono () in
    for w = 0 to nwindows - 1 do
      let ops0 = Serve.ops_counts sv in
      (* The control loop ticks at 4x the measurement window: submit in
         sub-chunks with a tick after each, so the rebalancer reacts to
         a hotspot rotation a quarter-window in — with the chunk still
         queued, its migrations run under load. *)
      let nchunks = 8 in
      let chunk = window_ops / nchunks in
      let tks =
        List.init nchunks (fun c ->
          let base = c * chunk in
          let len =
            if c = nchunks - 1 then window_ops - base else chunk
          in
          let part =
            Array.init len (fun j ->
              Serve.submit sv reqs.((w * window_ops) + base + j))
          in
          (match rb with
           | Some rb -> ignore (Rebalance.tick rb)
           | None -> ());
          part)
      in
      List.iter
        (fun part ->
          Array.iter (fun tk -> ignore (Serve.await sv tk)) part)
        tks;
      (* and once more on the drained pipeline: full slot deltas, empty
         queues — the clean signal that preps the next window *)
      (match rb with Some rb -> ignore (Rebalance.tick rb) | None -> ());
      let ops1 = Serve.ops_counts sv in
      let peak = ref 0 in
      Array.iteri (fun i o1 -> peak := max !peak (o1 - ops0.(i))) ops1;
      critical_ops := !critical_ops + !peak
    done;
    let wall = now_mono () -. t0 in
    Serve.stop sv;
    let st = Serve.stats sv in
    let tot_busy = Array.fold_left (fun a s -> a +. s.Serve.ss_busy) 0. st in
    let tot_ops = Array.fold_left (fun a s -> a + s.Serve.ss_ops) 0 st in
    let h = Serve.merged_hist sv in
    let p99 = float_of_int (Histogram.percentile h 99.) /. 1e3 in
    (!critical_ops, tot_busy, tot_ops, wall, p99, Serve.migrations sv,
     Serve.keys_moved sv)
  in
  print_row ~w:13
    [ "shards"; "router"; "model op/s"; "wall s"; "p99 us"; "migrations";
      "keys moved" ];
  List.iter
    (fun nshards ->
      let (crit_st, busy_st, ops_st, wall_st, p99_st, _, _) =
        run_storm ~nshards ~rebalance:false
      in
      let (crit_rb, _, _, wall_rb, p99_rb, migs, keys) =
        run_storm ~nshards ~rebalance:true
      in
      (* one per-op cost for both routers, from the static run *)
      let per_op = busy_st /. float_of_int (max 1 ops_st) in
      let thr_of crit =
        1. /. (per_op *. float_of_int (max 1 crit))
        *. float_of_int total_ops
      in
      let thr_st = thr_of crit_st and thr_rb = thr_of crit_rb in
      let speedup = thr_rb /. Float.max thr_st 1e-9 in
      let p99_bounded = p99_rb <= Float.max (5. *. p99_st) 1e3 in
      print_row ~w:13
        [ string_of_int nshards; "static"; fmt_ops thr_st;
          Printf.sprintf "%.2f" wall_st; Printf.sprintf "%.1f" p99_st;
          "0"; "0" ];
      print_row ~w:13
        [ string_of_int nshards; "rebalanced"; fmt_ops thr_rb;
          Printf.sprintf "%.2f" wall_rb; Printf.sprintf "%.1f" p99_rb;
          string_of_int migs; string_of_int keys ];
      Printf.printf
        "  %d shards: rebalancer speedup %.2fx (critical-path model) %s; \
         p99 %s under the storm\n"
        nshards speedup
        (if speedup >= 1.5 then "(>= 1.5x: OK)" else "(below the 1.5x bar)")
        (if p99_bounded then "bounded" else "UNBOUNDED");
      let nm what = Printf.sprintf "storm/%d/%s" nshards what in
      jemit ~experiment:"reshard" ~name:(nm "static") ~metric:"ops_per_s"
        ~unit_:"op/s"
        ~extra:[ ("p99_us", Json_out.J_float p99_st);
                 ("wall_s", Json_out.J_float wall_st) ]
        thr_st;
      jemit ~experiment:"reshard" ~name:(nm "rebalanced") ~metric:"ops_per_s"
        ~unit_:"op/s"
        ~extra:
          [ ("p99_us", Json_out.J_float p99_rb);
            ("wall_s", Json_out.J_float wall_rb);
            ("migrations", Json_out.J_int migs);
            ("keys_moved", Json_out.J_int keys);
            ("p99_bounded", Json_out.J_bool p99_bounded) ]
        thr_rb;
      jemit ~experiment:"reshard" ~name:(nm "speedup") ~metric:"speedup"
        speedup)
    [ 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Net: wire-protocol front end + open-loop YCSB macrobenchmark        *)
(* ------------------------------------------------------------------ *)

(* Four parts over a unix-domain loopback (no port collisions in CI).
   (1) Correctness gate: the same point-op stream through one wire
   connection and through [run_sequential] on an identically built
   store must produce bit-identical reply digests, both engines.
   (2) Closed-loop ceiling: loopback throughput vs the in-process
   pipeline at equal shard count — the wire must keep >= 0.5x.
   (3) Open-loop arrival-rate sweep (YCSB-B): latency measured from the
   *intended* send time of a pre-drawn schedule, i.e. coordinated-
   omission-safe; the service-time p99 is printed alongside so the gap
   (the omission a closed-loop driver hides) is visible in the output.
   (4) The YCSB letter suite A-F against the btree engine (E needs
   ordered scans), each letter open-loop at a fixed fraction of the
   measured ceiling. *)
let net () =
  let open Spp_shard in
  let open Spp_benchlib in
  let open Spp_net in
  print_title "Net: wire front end, open-loop (CO-safe) YCSB macrobenchmark";
  let nshards = 2 in
  let universe = sc 2_000 in
  let value = String.make 256 'v' in
  let key_of = Spp_pmemkv.Db_bench.key_of_int in
  let sock tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spp-net-%d-%s.sock" (Unix.getpid ()) tag)
  in
  let engines =
    [ ("cmap", Spp_pmemkv.Engines.cmap); ("btree", Spp_pmemkv.Engines.btree) ]
  in
  let build engine =
    let t = Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~engine ~nshards
        Spp_access.Spp in
    Shard_bench.preload t ~keys:universe;
    Shard.reset_stats t;
    t
  in
  let with_wire ~tag engine f =
    let t = build engine in
    let sv = Serve.create ~batch_cap:32 t in
    let srv = Net_server.create sv (Unix.ADDR_UNIX (sock tag)) in
    Fun.protect
      ~finally:(fun () ->
        Net_server.stop srv;
        Serve.stop sv)
      (fun () -> f (Net_server.addr srv))
  in
  Printf.printf
    "(%d shards, %d-key universe preloaded, 256 B values, unix-domain \
     loopback)\n"
    nshards universe;
  (* -- part 1: wire vs in-process differential, both engines -- *)
  print_subtitle "wire vs in-process differential (reply digests, per engine)";
  let diff_ops = sc 4_000 in
  List.iter
    (fun (ename, engine) ->
      (* point ops only: the wire executes a scan the moment it is
         decoded, while [run_sequential] orders it within its shard
         stream — routed ops are order-identical on both paths, scans
         are pinned by the tier-1 net tests instead *)
      let st = Random.State.make [| 0xE77; diff_ops |] in
      let reqs =
        Array.init diff_ops (fun _ ->
          let key = key_of (Random.State.int st universe) in
          match Random.State.int st 10 with
          | 0 | 1 | 2 | 3 -> Serve.Put { key; value }
          | 4 -> Serve.Remove key
          | _ -> Serve.Get key)
      in
      let wire_digest =
        with_wire ~tag:("diff-" ^ ename) engine (fun addr ->
          let cl = Net_client.connect addr in
          Fun.protect
            ~finally:(fun () -> Net_client.close cl)
            (fun () ->
              let futs = Array.map (Net_client.send cl) reqs in
              Serve.digest_replies (Array.map (Net_client.await cl) futs)))
      in
      let seq_digest =
        (* identically built store; partition by shard, run sequentially,
           reassemble the replies into send order *)
        let t = build engine in
        let buckets = Array.make nshards [] in
        Array.iter
          (fun r ->
            let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
            buckets.(s) <- r :: buckets.(s))
          reqs;
        let streams = Array.map (fun l -> Array.of_list (List.rev l)) buckets in
        let per_shard = Serve.run_sequential t ~batch_cap:32 streams in
        let cursors = Array.make nshards 0 in
        Serve.digest_replies
          (Array.map
             (fun r ->
               let s = Shard.shard_of_key ~nshards (Serve.request_key r) in
               let reply = per_shard.(s).(cursors.(s)) in
               cursors.(s) <- cursors.(s) + 1;
               reply)
             reqs)
      in
      let identical = wire_digest = seq_digest in
      Printf.printf "  %-6s %d ops: %s\n" ename diff_ops
        (if identical then "bit-identical reply digests"
         else "!! DIVERGENCE — results invalid");
      jemit ~experiment:"net" ~name:("differential/" ^ ename)
        ~metric:"identical"
        (if identical then 1. else 0.);
      if not identical then
        failwith ("net: wire vs in-process divergence on " ^ ename))
    engines;
  (* -- part 2: closed-loop throughput ceiling -- *)
  print_subtitle "closed-loop ceiling: loopback wire vs in-process pipeline";
  let ceil_ops = sc 24_000 in
  let window = 128 and nclients = 2 in
  let gen_reqs ~seed n =
    let st = Random.State.make [| seed; 0xB0A7 |] in
    Array.init n (fun _ ->
      let key = key_of (Random.State.int st universe) in
      if Random.State.int st 4 = 3 then Serve.Get key
      else Serve.Put { key; value })
  in
  let inproc_thr =
    let t = build Spp_pmemkv.Engines.cmap in
    let sv = Serve.create ~batch_cap:32 t in
    let per_client =
      Array.init nclients (fun c ->
        gen_reqs ~seed:(50 + c) (ceil_ops / nclients))
    in
    let t0 = now_mono () in
    let feeders =
      Array.map
        (fun reqs ->
          Domain.spawn (fun () ->
            let q = Queue.create () in
            Array.iter
              (fun r ->
                if Queue.length q >= window then
                  ignore (Serve.await sv (Queue.pop q));
                Queue.push (Serve.submit sv r) q)
              reqs;
            Queue.iter (fun tk -> ignore (Serve.await sv tk)) q))
        per_client
    in
    Array.iter Domain.join feeders;
    let wall = now_mono () -. t0 in
    Serve.stop sv;
    float_of_int (nclients * (ceil_ops / nclients)) /. Float.max wall 1e-9
  in
  let wire_thr =
    with_wire ~tag:"ceiling" Spp_pmemkv.Engines.cmap (fun addr ->
      let per_client =
        Array.init nclients (fun c ->
          gen_reqs ~seed:(50 + c) (ceil_ops / nclients))
      in
      let t0 = now_mono () in
      let drivers =
        Array.map
          (fun reqs ->
            Domain.spawn (fun () ->
              (* corked: the ceiling is a throughput number, so batching
                 request frames into ~8 KiB writes is fair game *)
              let cl = Net_client.connect ~cork:true addr in
              Fun.protect
                ~finally:(fun () -> Net_client.close cl)
                (fun () ->
                  Loadgen.closed_loop cl ~window ~ops:(Array.length reqs)
                    ~next:(fun i -> [| reqs.(i) |]))))
          per_client
      in
      let results = Array.map Domain.join drivers in
      let wall = now_mono () -. t0 in
      let ops = Array.fold_left (fun a r -> a + r.Loadgen.lg_ops) 0 results in
      float_of_int ops /. Float.max wall 1e-9)
  in
  let ratio = wire_thr /. Float.max inproc_thr 1e-9 in
  Printf.printf "  in-process %s | loopback %s | ratio %.2fx %s\n"
    (fmt_ops inproc_thr) (fmt_ops wire_thr) ratio
    (if ratio >= 0.5 then "(>= 0.5x: OK)" else "(below the 0.5x bar!)");
  jemit ~experiment:"net" ~name:"ceiling/inproc" ~metric:"ops_per_s"
    ~unit_:"op/s" inproc_thr;
  jemit ~experiment:"net" ~name:"ceiling/loopback" ~metric:"ops_per_s"
    ~unit_:"op/s"
    ~extra:[ ("ratio_vs_inproc", Json_out.J_float ratio) ]
    wire_thr;
  if (not quick) && ratio < 0.5 then
    failwith "net: loopback throughput below 0.5x of in-process";
  (* -- part 3: open-loop arrival-rate sweep (YCSB-B) -- *)
  print_subtitle "open-loop sweep (YCSB-B, latency from intended send time)";
  if quick then
    Printf.printf
      "(note: percentiles are meaningless under --quick; use a full run)\n";
  print_row ~w:12
    [ "rate frac"; "target/s"; "achieved/s"; "p50 us"; "p99 us"; "p999 us";
      "svc p99 us"; "failed" ];
  let sweep_ops = sc 20_000 in
  let us h p = float_of_int (Histogram.percentile h p) /. 1e3 in
  List.iter
    (fun frac ->
      Gc.compact ();
      with_wire ~tag:(Printf.sprintf "open%02.0f" (frac *. 100.))
        Spp_pmemkv.Engines.cmap (fun addr ->
          let cl = Net_client.connect ~pool:2 addr in
          Fun.protect
            ~finally:(fun () -> Net_client.close cl)
            (fun () ->
              let y = Ycsb.create ~letter:Ycsb.B ~seed:11 ~universe () in
              let rate = Float.max 1. (frac *. wire_thr) in
              let r =
                Loadgen.open_loop cl ~rate ~ops:sweep_ops
                  ~next:
                    (Loadgen.ycsb_next y ~key:key_of ~value:(fun _ -> value))
              in
              print_row ~w:12
                [ Printf.sprintf "%.1f" frac;
                  Printf.sprintf "%.0f" r.Loadgen.lg_target;
                  Printf.sprintf "%.0f" r.Loadgen.lg_achieved;
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 50.);
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 99.);
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 99.9);
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_service 99.);
                  string_of_int r.Loadgen.lg_failed ];
              let nm what = Printf.sprintf "open/frac%.0f/%s" (frac *. 100.) what in
              jemit ~experiment:"net" ~name:(nm "throughput")
                ~metric:"ops_per_s" ~unit_:"op/s"
                ~extra:
                  [ ("target_ops_per_s", Json_out.J_float r.Loadgen.lg_target);
                    ("failed", Json_out.J_int r.Loadgen.lg_failed) ]
                r.Loadgen.lg_achieved;
              List.iter
                (fun p ->
                  jemit ~experiment:"net" ~name:(nm (Printf.sprintf "p%g" p))
                    ~metric:"latency_us" ~unit_:"us"
                    ~extra:
                      [ ("service_us",
                         Json_out.J_float (us r.Loadgen.lg_service p)) ]
                    (us r.Loadgen.lg_hist p))
                [ 50.; 99.; 99.9 ])))
    [ 0.3; 0.6; 0.9 ];
  (* -- part 4: YCSB letter suite A-F (btree engine, ordered scans) -- *)
  print_subtitle "YCSB A-F (btree engine, open loop at 0.25x cmap ceiling)";
  let short = function
    | Ycsb.A -> "A upd-heavy"
    | Ycsb.B -> "B read-heavy"
    | Ycsb.C -> "C read-only"
    | Ycsb.D -> "D read-latest"
    | Ycsb.E -> "E scan-heavy"
    | Ycsb.F -> "F rmw"
  in
  print_row ~w:14
    [ "workload"; "target/s"; "achieved/s"; "p50 us"; "p99 us"; "p999 us";
      "failed" ];
  let letter_ops = sc 8_000 in
  let letter_rate = Float.max 1. (0.25 *. wire_thr) in
  List.iter
    (fun letter ->
      Gc.compact ();
      let lc = Ycsb.char_of_letter letter in
      with_wire ~tag:(Printf.sprintf "ycsb-%c" lc) Spp_pmemkv.Engines.btree
        (fun addr ->
          let cl = Net_client.connect ~pool:2 addr in
          Fun.protect
            ~finally:(fun () -> Net_client.close cl)
            (fun () ->
              let y =
                Ycsb.create ~max_span:16 ~letter ~seed:23 ~universe ()
              in
              let r =
                Loadgen.open_loop cl ~rate:letter_rate ~ops:letter_ops
                  ~next:
                    (Loadgen.ycsb_next y ~key:key_of ~value:(fun _ -> value))
              in
              print_row ~w:14
                [ short letter;
                  Printf.sprintf "%.0f" r.Loadgen.lg_target;
                  Printf.sprintf "%.0f" r.Loadgen.lg_achieved;
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 50.);
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 99.);
                  Printf.sprintf "%.1f" (us r.Loadgen.lg_hist 99.9);
                  string_of_int r.Loadgen.lg_failed ];
              let nm what = Printf.sprintf "ycsb/%c/%s" lc what in
              jemit ~experiment:"net" ~name:(nm "throughput")
                ~metric:"ops_per_s" ~unit_:"op/s"
                ~extra:
                  [ ("target_ops_per_s", Json_out.J_float r.Loadgen.lg_target);
                    ("mix", Json_out.J_string (Ycsb.describe letter));
                    ("failed", Json_out.J_int r.Loadgen.lg_failed) ]
                r.Loadgen.lg_achieved;
              List.iter
                (fun p ->
                  jemit ~experiment:"net" ~name:(nm (Printf.sprintf "p%g" p))
                    ~metric:"latency_us" ~unit_:"us" (us r.Loadgen.lg_hist p))
                [ 50.; 99.; 99.9 ])))
    [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]

let experiments =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("bugs", bugs);
    ("crashcheck", crashcheck);
    ("counters", counters);
    ("ablation", ablation);
    ("hooks", hook_microbench);
    ("pipeline", pipeline);
    ("scaleout", scaleout);
    ("serve", serve);
    ("cache", cache);
    ("failover", failover);
    ("scan", scan_bench);
    ("reshard", reshard);
    ("net", net);
  ]

let () =
  let requested =
    let rec strip = function
      | [] -> []
      | "--quick" :: rest -> strip rest
      | "--json" :: _ :: rest -> strip rest
      | "--domains" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
    in
    strip (List.tl (Array.to_list Sys.argv))
  in
  let to_run =
    if requested = [] then experiments
    else
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 1)
        requested
  in
  Printf.printf "SPP reproduction benchmarks%s\n"
    (if quick then " (quick mode)" else "");
  List.iter
    (fun (name, f) ->
      (* return freed pool buffers to the OS between experiments so a
         later experiment's timings never pay for an earlier one's heap *)
      Gc.compact ();
      let t, () = time f in
      jemit ~experiment:name ~name:"total" ~metric:"wall_s" ~unit_:"s" t;
      Printf.printf "[%s finished in %.1f s]\n%!" name t)
    to_run;
  match json_file with
  | None -> ()
  | Some path ->
    Spp_benchlib.Json_out.write jout
      ~meta:
        [ ("generator", Spp_benchlib.Json_out.J_string "bench/main.exe");
          ("quick", Spp_benchlib.Json_out.J_bool quick) ]
      path;
    Printf.printf "wrote %s\n%!" path
