(* sppctl — command-line driver for the SPP reproduction.

   Subcommands:
     info      show an SPP pointer-encoding configuration
     decode    decode a (simulated) tagged pointer value
     attack    run the RIPE attack matrix for one variant or all
     index     drive a persistent index and report timing + space
     check     run an index workload under the pmemcheck trace checker
     explore   pmreorder-style crash-state exploration of an index op
     torture   systematic crash-point enumeration with media faults
     serve     drive the async batched serving pipeline (group commit),
               or expose it on a socket with --listen
     failover  kill a shard's primary mid-run and promote its replica
     netbench  YCSB suite over the wire front end, open- or closed-loop *)

open Cmdliner

let tag_bits_arg =
  let doc = "Tag width in bits (paper default: 26; Phoenix runs use 31)." in
  Arg.(value & opt int 26 & info [ "tag-bits" ] ~docv:"BITS" ~doc)

let variant_conv =
  let parse s =
    match s with
    | "pmdk" -> Ok Spp_access.Pmdk
    | "spp" -> Ok Spp_access.Spp
    | "safepm" -> Ok Spp_access.Safepm
    | "memcheck" -> Ok Spp_access.Memcheck
    | _ -> Error (`Msg "expected pmdk | spp | safepm | memcheck")
  in
  Arg.conv (parse, fun ppf v ->
    Format.pp_print_string ppf (Spp_access.variant_name v))

let variant_arg =
  let doc = "Benchmarking variant (pmdk, spp, safepm, memcheck)." in
  Arg.(value & opt variant_conv Spp_access.Spp
       & info [ "variant" ] ~docv:"VARIANT" ~doc)

let engine_conv =
  let parse s =
    match Spp_pmemkv.Engines.of_name s with
    | Some e -> Ok e
    | None -> Error (`Msg "expected cmap | btree")
  in
  Arg.conv (parse, fun ppf e ->
    Format.pp_print_string ppf (Spp_pmemkv.Engine.spec_name e))

let engine_arg =
  let doc =
    "KV engine behind the shards: cmap (concurrent hashmap, O(n) scans) \
     or btree (ordered COW B-tree, O(log n + k) scans)."
  in
  Arg.(value & opt engine_conv Spp_pmemkv.Engines.cmap
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* info *)

let info_cmd =
  let run tag_bits =
    let cfg = Spp_core.Config.make ~tag_bits in
    Format.printf "%a@." Spp_core.Config.pp cfg
  in
  Cmd.v (Cmd.info "info" ~doc:"Show an SPP pointer-encoding configuration")
    Term.(const run $ tag_bits_arg)

(* decode *)

let decode_cmd =
  let ptr_arg =
    let doc = "Pointer value (accepts 0x-prefixed hex)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PTR" ~doc)
  in
  let run tag_bits ptr_str =
    let cfg = Spp_core.Config.make ~tag_bits in
    let ptr = int_of_string ptr_str in
    Format.printf "%a@." (Spp_core.Encoding.pp cfg) ptr;
    if Spp_core.Encoding.is_pm cfg ptr then
      Format.printf "remaining bytes before upper bound: %d@."
        (Spp_core.Encoding.remaining cfg ptr)
  in
  Cmd.v (Cmd.info "decode" ~doc:"Decode a simulated tagged pointer")
    Term.(const run $ tag_bits_arg $ ptr_arg)

(* attack *)

let attack_cmd =
  let all_arg =
    let doc = "Run all five Table IV rows instead of a single variant." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let verbose_arg =
    let doc = "Print the outcome of every individual attack." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let print_row verbose r =
    Printf.printf "%-14s successful=%2d prevented=%2d failed=%2d\n"
      r.Spp_ripe.Ripe.row_name r.Spp_ripe.Ripe.successful
      r.Spp_ripe.Ripe.prevented r.Spp_ripe.Ripe.failed;
    if verbose then
      List.iter
        (fun (at, o) ->
          Printf.printf "    %-28s %s\n"
            (Spp_ripe.Ripe.attack_name at)
            (Spp_ripe.Ripe.outcome_name o))
        r.Spp_ripe.Ripe.details
  in
  let run all verbose variant =
    if all then List.iter (print_row verbose) (Spp_ripe.Ripe.run_all ())
    else print_row verbose (Spp_ripe.Ripe.run_row variant)
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run the RIPE buffer-overflow attack matrix")
    Term.(const run $ all_arg $ verbose_arg $ variant_arg)

(* index *)

let index_name_arg =
  let doc = "Index: ctree, rbtree, rtree, hashmap_tx or btree." in
  Arg.(value & opt string "ctree" & info [ "name" ] ~docv:"INDEX" ~doc)

let ops_arg =
  let doc = "Number of operations." in
  Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc)

let index_cmd =
  let run variant index_name ops =
    let pool_size = if index_name = "rtree" then 1 lsl 27 else 1 lsl 26 in
    let a = Spp_access.create ~pool_size ~name:index_name variant in
    let ix = Spp_indices.Indices.create index_name a in
    let ks = Spp_benchlib.Bench_util.keys ~seed:1 ~universe:(4 * ops) ops in
    let t_ins, () =
      Spp_benchlib.Bench_util.time (fun () ->
        Array.iter (fun k -> ix.Spp_indices.Indices.insert ~key:k ~value:k) ks)
    in
    let t_get, () =
      Spp_benchlib.Bench_util.time (fun () ->
        Array.iter (fun k -> ignore (ix.Spp_indices.Indices.get k)) ks)
    in
    let st = Spp_pmdk.Pool.heap_stats a.Spp_access.pool in
    Printf.printf
      "%s on %s: %d inserts in %.3f s (%.0f op/s), %d gets in %.3f s (%.0f \
       op/s)\n"
      index_name (Spp_access.variant_name variant) ops t_ins
      (float_of_int ops /. t_ins)
      ops t_get
      (float_of_int ops /. t_get);
    Printf.printf "heap: %d live blocks, %s allocated (%s requested)\n"
      st.Spp_pmdk.Heap.allocated_blocks
      (Spp_benchlib.Bench_util.fmt_mb st.Spp_pmdk.Heap.allocated_bytes)
      (Spp_benchlib.Bench_util.fmt_mb st.Spp_pmdk.Heap.requested_bytes)
  in
  Cmd.v (Cmd.info "index" ~doc:"Drive a persistent index")
    Term.(const run $ variant_arg $ index_name_arg $ ops_arg)

(* check *)

let check_cmd =
  let run variant index_name ops =
    let pool_size = if index_name = "rtree" then 1 lsl 27 else 1 lsl 26 in
    let a = Spp_access.create ~pool_size ~name:index_name variant in
    let ix = Spp_indices.Indices.create index_name a in
    let (), report =
      Spp_pmemcheck.Pmemcheck.check_run a.Spp_access.pool (fun () ->
        for k = 1 to ops do
          ix.Spp_indices.Indices.insert ~key:k ~value:k
        done)
    in
    Format.printf "pmemcheck %s/%s: %a [%s]@." index_name
      (Spp_access.variant_name variant)
      Spp_pmemcheck.Pmemcheck.pp_report report
      (if Spp_pmemcheck.Pmemcheck.is_clean report then "CLEAN"
       else "VIOLATIONS")
  in
  let small_ops =
    Arg.(value & opt int 500 & info [ "ops" ] ~docv:"N" ~doc:"Operations.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run an index workload under the pmemcheck trace checker")
    Term.(const run $ variant_arg $ index_name_arg $ small_ops)

(* pool: pmempool-style info / check / save / open *)

let pool_demo_cmd =
  let save_arg =
    let doc = "Save the pool's durable image to this file." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let run variant index_name ops save =
    let pool_size = if index_name = "rtree" then 1 lsl 27 else 1 lsl 24 in
    let a = Spp_access.create ~pool_size ~name:index_name variant in
    let ix = Spp_indices.Indices.create index_name a in
    for k = 1 to ops do
      ix.Spp_indices.Indices.insert ~key:k ~value:(k * 3)
    done;
    for k = 1 to ops / 2 do
      ignore (ix.Spp_indices.Indices.remove k)
    done;
    Format.printf "%a@." Spp_pmdk.Inspect.pp_info
      (Spp_pmdk.Inspect.info a.Spp_access.pool);
    (match Spp_pmdk.Inspect.check a.Spp_access.pool with
     | [] -> print_endline "integrity check: OK"
     | issues ->
       List.iter
         (fun i -> print_endline ("ISSUE: " ^ Spp_pmdk.Inspect.issue_to_string i))
         issues);
    match save with
    | None -> ()
    | Some path ->
      Spp_sim.Memdev.save_durable (Spp_pmdk.Pool.dev a.Spp_access.pool) path;
      Printf.printf "saved durable image to %s\n" path
  in
  Cmd.v
    (Cmd.info "pool-demo"
       ~doc:"Populate a pool with an index workload, then inspect and check it")
    Term.(const run $ variant_arg $ index_name_arg $ ops_arg $ save_arg)

let pool_open_cmd =
  let file_arg =
    let doc = "Pool image file (from pool-demo --save)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run path =
    let dev =
      try
        Spp_sim.Memdev.load_durable ~name:(Filename.basename path)
          ~min_size:Spp_pmdk.Pool.min_pool_size
          ~magic:Spp_pmdk.Pool.magic_word path
      with Invalid_argument msg ->
        prerr_endline ("not a pool image: " ^ msg);
        exit 1
    in
    let space = Spp_sim.Space.create () in
    match Spp_pmdk.Pool.open_dev space ~base:4096 dev with
    | Error e ->
      Format.eprintf "corrupt pool: %a@." Spp_pmdk.Pool.pp_pool_error e;
      exit 1
    | Ok (pool, _report) ->
      Format.printf "%a@." Spp_pmdk.Inspect.pp_info
        (Spp_pmdk.Inspect.info pool);
      (match Spp_pmdk.Inspect.check pool with
       | [] -> print_endline "integrity check: OK"
       | issues ->
         List.iter
           (fun i ->
             print_endline ("ISSUE: " ^ Spp_pmdk.Inspect.issue_to_string i))
           issues;
         exit 1)
  in
  Cmd.v
    (Cmd.info "pool-open"
       ~doc:"Open a saved pool image, run recovery, inspect and check it")
    Term.(const run $ file_arg)

(* explore *)

let explore_cmd =
  let run variant =
    let a = Spp_access.create ~pool_size:(1 lsl 20) ~name:"explore" variant in
    let t = Spp_indices.Hashmap_tx.create a in
    Spp_indices.Hashmap_tx.insert t ~key:1 ~value:10;
    let map_off = (Spp_indices.Hashmap_tx.map_oid_of t).Spp_pmdk.Oid.off in
    let consistent pool' =
      let count = Spp_pmdk.Pool.load_word pool' ~off:map_off in
      count = 1 || count = 2
    in
    let result =
      Spp_pmemcheck.Pmreorder.explore ~pool:a.Spp_access.pool
        ~workload:(fun () -> Spp_indices.Hashmap_tx.insert t ~key:2 ~value:20)
        ~consistent ()
    in
    Format.printf "pmreorder hashmap_tx/%s: %a@."
      (Spp_access.variant_name variant)
      Spp_pmemcheck.Pmreorder.pp_result result
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Explore crash states of a transactional index insert")
    Term.(const run $ variant_arg)

(* torture *)

let torture_cmd =
  let workload_arg =
    let doc =
      "Workload to torture: kvstore, pmemlog, counter, kvbatch \
       (group-committed multi-put), kvfailover (replicated batch with \
       promotion differential), kvfailover-drop (same over a lossy \
       channel), kvscan (interleaved puts/removes/ordered scans with a \
       whole-op-prefix snapshot oracle), kvscan-btree (kvscan pinned to \
       the B-tree engine), kvreshard (slot migration copy/claim/delete \
       with a single-owner oracle), kvreshard-btree, or all. kvfailover, \
       kvscan and kvreshard honor --engine."
    in
    Arg.(value & opt string "all" & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let budget_arg =
    let doc =
      "Maximum crash points per workload; events beyond it are sampled \
       at a uniform stride (default: enumerate every event)."
    in
    Arg.(value & opt int max_int & info [ "budget" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Seed for torn-write subsets and bit-flip placement." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let torn_arg =
    let doc =
      "Torn crashes: a seeded subset of the unfenced stores reaches the \
       media at each crash (cache-eviction reordering)."
    in
    Arg.(value & flag & info [ "torn" ] ~doc)
  in
  let bitflips_arg =
    let doc =
      "Flip this many seeded random bits in the durable image after each \
       crash (media rot); typed open rejections then count as graceful."
    in
    Arg.(value & opt int 0 & info [ "bitflips" ] ~docv:"N" ~doc)
  in
  let tops_arg =
    let doc = "Operations per workload run." in
    Arg.(value & opt int 24 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let run variant engine workload budget seed torn bitflips ops =
    let open Spp_torture in
    let faults = { Torture.torn; bitflips } in
    let workloads =
      match workload with
      | "all" -> Workloads.all ~variant ~ops ~engine ()
      | name ->
        (match Workloads.by_name ~variant ~ops ~engine name with
         | Some w -> [ w ]
         | None ->
           prerr_endline
             ("unknown workload " ^ name
              ^ " (expected kvstore | pmemlog | counter | kvbatch | \
                 kvfailover | kvfailover-drop | kvscan | kvscan-btree | \
                 kvreshard | kvreshard-btree | all)");
           exit 2)
    in
    let failed = ref false in
    List.iter
      (fun w ->
        let r = Torture.run ~budget ~seed ~faults w in
        Format.printf "%a@." Torture.pp_report r;
        if r.Torture.r_invariant_failures > 0 then failed := true)
      workloads;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Enumerate crash points of a recovery workload: replay it once \
          per durability event, cut the power there, reopen, recover, \
          and check the acknowledgement invariant")
    Term.(const run $ variant_arg $ engine_arg $ workload_arg $ budget_arg
          $ seed_arg $ torn_arg $ bitflips_arg $ tops_arg)

(* serve *)

let serve_cmd =
  let shards_arg =
    let doc = "Number of shards (one worker domain each)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let batch_cap_arg =
    let doc = "Maximum requests drained into one group-committed batch." in
    Arg.(value & opt int 32 & info [ "batch-cap" ] ~docv:"N" ~doc)
  in
  let serve_ops_arg =
    let doc = "Synthetic requests to submit (3:1 put:get over 512 keys)." in
    Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc =
      "Submission window: outstanding requests kept in flight. Large \
       windows build queue pressure and let adaptive batching amortize \
       fences; window 1 degenerates to one op per batch."
    in
    Arg.(value & opt int 64 & info [ "window" ] ~docv:"N" ~doc)
  in
  let cache_cap_arg =
    let doc =
      "Per-shard DRAM read-cache entries. A get hitting the cache is \
       answered on the submitting thread without entering the shard's \
       queue. 0 disables the cache."
    in
    Arg.(value & opt int 4096 & info [ "cache-cap" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the read cache (same as --cache-cap 0)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let replicas_arg =
    let doc =
      "Warm replica stacks per shard. 0 disables replication; with N > \
       0 every group-committed batch is shipped to N standbys and the \
       batch's tickets are acknowledged per --ack-policy."
    in
    Arg.(value & opt int 0 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let ack_policy_arg =
    let doc =
      "Replication ack policy: async (acknowledge immediately), \
       semi-sync (wait for one replica to apply), or sync (wait for \
       every live replica)."
    in
    Arg.(value & opt string "semi-sync"
         & info [ "ack-policy" ] ~docv:"POLICY" ~doc)
  in
  let slots_arg =
    let doc =
      "Slot-space size for the versioned slot router (a power of two; \
       0 keeps the default). Every key hashes to one slot and slots — \
       not keys — are what migrate between shards."
    in
    Arg.(value & opt int 0 & info [ "slots" ] ~docv:"N" ~doc)
  in
  let rebalance_arg =
    let doc =
      "Run the hot-slot rebalancer: every 512 submissions it compares \
       per-shard load (owned-slot op deltas plus queue depths) and \
       live-migrates hot slots from the hottest shard to the coldest \
       (default hysteresis)."
    in
    Arg.(value & flag & info [ "rebalance" ] ~doc)
  in
  let zipf_arg =
    let doc =
      "Zipfian skew of the synthetic key stream, in (0, 1); 0 keeps it \
       uniform. Skewed streams give --rebalance hotspots to chase."
    in
    Arg.(value & opt float 0. & info [ "zipf" ] ~docv:"THETA" ~doc)
  in
  let stats_table_arg =
    let doc =
      "Print a per-shard table after the run: executed ops, peak queue \
       depth, read-cache hit rate and owned-slot count."
    in
    Arg.(value & flag & info [ "stats-table" ] ~doc)
  in
  let listen_arg =
    let doc =
      "Expose the pipeline on a socket (unix:PATH, PORT for loopback \
       TCP, or HOST:PORT) and serve the wire protocol until killed, \
       instead of driving synthetic load. Drive it with `sppctl \
       netbench --connect ADDR`. The synthetic-load flags (--ops, \
       --window, --zipf, --rebalance, --stats-table) are ignored."
    in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let run variant engine nshards batch_cap ops window cache_cap no_cache
      replicas ack_policy slots rebalance zipf stats_table listen =
    let open Spp_shard in
    let open Spp_benchlib in
    let nshards = max 1 nshards and window = max 1 window in
    let cache_cap = if no_cache then 0 else max 0 cache_cap in
    let policy =
      match Replica.ack_policy_of_string ack_policy with
      | Some p -> p
      | None ->
        prerr_endline
          ("unknown ack policy " ^ ack_policy
           ^ " (expected async | semi-sync | sync)");
        exit 2
    in
    let replication =
      if replicas <= 0 then None
      else Some { Replica.default_config with replicas; policy }
    in
    let t =
      if slots > 0 then
        Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~cache_cap ~engine
          ~nslots:slots ~nshards variant
      else
        Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~cache_cap ~engine
          ~nshards variant
    in
    for i = 0 to nshards - 1 do
      Spp_sim.Memdev.set_tracking
        (Spp_pmdk.Pool.dev (Shard.shard_access (Shard.shard t i)).Spp_access.pool)
        true
    done;
    Shard.reset_stats t;
    let sv = Serve.create ~batch_cap ?replication t in
    match listen with
    | Some addrstr ->
      let srv =
        Spp_net.Net_server.create sv (Spp_net.Net_server.parse_addr addrstr)
      in
      Format.printf "serving %d shard(s) (%s, %s engine) on %a@." nshards
        (Spp_access.variant_name variant)
        (Shard.engine_name t) Spp_net.Net_server.pp_addr
        (Spp_net.Net_server.addr srv);
      Format.printf
        "wire protocol: u32le length-prefixed frames (lib/net/wire.mli); \
         drive with `sppctl netbench --connect %s`; Ctrl-C stops@."
        addrstr;
      while true do
        Unix.sleep 3600
      done
    | None ->
    let rb = if rebalance then Some (Rebalance.create sv) else None in
    let st = Random.State.make [| 0x5E12 |] in
    let next_key =
      if zipf > 0. then begin
        let gen =
          Keygen.zipfian ~theta:zipf ~seed:0x5E12 ~universe:512 ()
        in
        fun () -> Keygen.next gen
      end
      else fun () -> Random.State.int st 512
    in
    let value = String.make 256 'v' in
    let q = Queue.create () in
    let t0 = Bench_util.now_mono () in
    for n = 1 to ops do
      if Queue.length q >= window then ignore (Serve.await sv (Queue.pop q));
      let key = Printf.sprintf "key-%04d" (next_key ()) in
      let req =
        if Random.State.int st 4 = 3 then Serve.Get key
        else Serve.Put { key; value }
      in
      Queue.push (Serve.submit sv req) q;
      match rb with
      | Some rb when n mod 512 = 0 -> ignore (Rebalance.tick rb)
      | _ -> ()
    done;
    Queue.iter (fun tk -> ignore (Serve.await sv tk)) q;
    let wall = Bench_util.now_mono () -. t0 in
    Serve.stop sv;
    Printf.printf
      "%d requests on %d shard(s), batch cap %d, window %d (%s, %s \
       engine): %.3f s (%.0f op/s)\n"
      ops nshards batch_cap window (Spp_access.variant_name variant)
      (Shard.engine_name t) wall
      (float_of_int ops /. Float.max wall 1e-9);
    let batches = max 1 (Serve.total_batches sv) in
    Printf.printf "batches: %d (avg %.1f ops/batch)\n" batches
      (float_of_int ops /. float_of_int batches);
    Array.iter
      (fun s ->
        Printf.printf
          "  shard %d: %d ops in %d batches (largest %d), p50 %s\n"
          s.Serve.ss_shard s.Serve.ss_ops s.Serve.ss_batches
          s.Serve.ss_max_batch
          (Bench_util.fmt_lat_ns (Histogram.percentile s.Serve.ss_hist 50.)))
      (Serve.stats sv);
    let h = Serve.merged_hist sv in
    Printf.printf
      "latency: p50 %s, p95 %s, p99 %s, max %s\n"
      (Bench_util.fmt_lat_ns (Histogram.p50 h))
      (Bench_util.fmt_lat_ns (Histogram.p95 h))
      (Bench_util.fmt_lat_ns (Histogram.p99 h))
      (Bench_util.fmt_lat_ns (Histogram.max_value h));
    let c = Shard.merged_counters t in
    Printf.printf
      "merged counters: %d stores, %d flushes, %d fences (%.3f fences/op), \
       %d batched ops, %d fences saved by group commit\n"
      c.Spp_sim.Memdev.stores c.Spp_sim.Memdev.flushes c.Spp_sim.Memdev.fences
      (float_of_int c.Spp_sim.Memdev.fences /. float_of_int ops)
      c.Spp_sim.Memdev.batched_ops c.Spp_sim.Memdev.fences_saved;
    if Shard.cache_enabled t then begin
      let rc = Shard.merged_cache_stats t in
      Format.printf "read cache (%d entries/shard): %a, %d bypassed gets@."
        cache_cap Spp_pmemkv.Rcache.pp_stats rc (Serve.bypassed_gets sv)
    end
    else print_endline "read cache: disabled";
    (match rb with
     | Some rb ->
       let s = Rebalance.stats rb in
       Printf.printf
         "rebalancer: %d ticks (%d armed), %d slot moves, %d keys \
          migrated, %d requests forwarded\n"
         s.Rebalance.rb_ticks s.Rebalance.rb_armed s.Rebalance.rb_moves
         s.Rebalance.rb_keys_moved (Serve.forwarded sv)
     | None -> ());
    if stats_table then begin
      let ops_c = Serve.ops_counts sv in
      let peaks = Serve.peak_queue_depths sv in
      Printf.printf "%-6s %-10s %-8s %-10s %s\n"
        "shard" "ops" "peak-q" "cache-hit" "slots";
      for i = 0 to nshards - 1 do
        let hit =
          match Spp_pmemkv.Engine.cache (Shard.shard_kv (Shard.shard t i)) with
          | Some rc ->
            let s = Spp_pmemkv.Rcache.stats rc in
            let probes =
              s.Spp_pmemkv.Rcache.rc_hits + s.Spp_pmemkv.Rcache.rc_misses
            in
            if probes = 0 then "-"
            else
              Printf.sprintf "%.1f%%"
                (100.
                 *. float_of_int s.Spp_pmemkv.Rcache.rc_hits
                 /. float_of_int probes)
          | None -> "-"
        in
        Printf.printf "%-6d %-10d %-8d %-10s %d\n" i ops_c.(i) peaks.(i)
          hit
          (Shard.owned_slots t i)
      done
    end;
    match Serve.replication_stats sv with
    | [] -> ()
    | rs ->
      List.iter
        (fun s ->
          Printf.printf
            "  replication shard %d: %d/%d replicas live, %d commits \
             shipped (%d ops), acked through %d, %d retries, %d degraded \
             acks\n"
            s.Replica.rs_shard s.Replica.rs_live s.Replica.rs_replicas
            s.Replica.rs_seq s.Replica.rs_ops s.Replica.rs_acked_seq
            s.Replica.rs_retries s.Replica.rs_degraded_acks)
        rs;
      let lag = Serve.replication_lag sv in
      if Histogram.count lag > 0 then
        Printf.printf
          "replication lag (%s): p50 %s, p99 %s over %d commits\n"
          (Replica.ack_policy_to_string policy)
          (Bench_util.fmt_lat_ns (Histogram.p50 lag))
          (Bench_util.fmt_lat_ns (Histogram.p99 lag))
          (Histogram.count lag)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive the asynchronous batched serving pipeline: per-shard \
          submission queues drained in adaptive batches, each batch \
          group-committed through one coalesced redo flush and fence \
          schedule. A per-shard DRAM read cache (--cache-cap) answers \
          hot gets on the submitting thread, bypassing the queue. With \
          --replicas N every batch is also shipped to N warm standbys \
          per shard and acknowledged per --ack-policy. Keys route \
          through a versioned slot table (--slots); --rebalance \
          live-migrates hot slots between shards while serving")
    Term.(const run $ variant_arg $ engine_arg $ shards_arg $ batch_cap_arg
          $ serve_ops_arg $ window_arg $ cache_cap_arg $ no_cache_arg
          $ replicas_arg $ ack_policy_arg $ slots_arg $ rebalance_arg
          $ zipf_arg $ stats_table_arg $ listen_arg)

(* failover *)

let failover_cmd =
  let shards_arg =
    let doc = "Number of shards (one worker domain each)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let replicas_arg =
    let doc = "Warm replica stacks per shard." in
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc)
  in
  let ack_policy_arg =
    let doc = "Replication ack policy: async, semi-sync or sync." in
    Arg.(value & opt string "semi-sync"
         & info [ "ack-policy" ] ~docv:"POLICY" ~doc)
  in
  let fo_ops_arg =
    let doc = "Synthetic requests to submit (3:1 put:get over 512 keys)." in
    Arg.(value & opt int 8_000 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let drop_rate_arg =
    let doc = "Replication channel loss rate in [0, 1) (seeded, reproducible)." in
    Arg.(value & opt float 0. & info [ "drop-rate" ] ~docv:"RATE" ~doc)
  in
  let run variant engine nshards replicas ack_policy ops drop_rate =
    let open Spp_shard in
    let open Spp_benchlib in
    let nshards = max 1 nshards in
    let policy =
      match Replica.ack_policy_of_string ack_policy with
      | Some p -> p
      | None ->
        prerr_endline
          ("unknown ack policy " ^ ack_policy
           ^ " (expected async | semi-sync | sync)");
        exit 2
    in
    let cfg =
      { Replica.default_config with
        replicas = max 1 replicas; policy; drop_rate }
    in
    let t =
      Shard.create ~nbuckets:512 ~pool_size:(1 lsl 22) ~engine ~nshards
        variant
    in
    let sv = Serve.create ~batch_cap:32 ~replication:cfg t in
    let st = Random.State.make [| 0xFA11 |] in
    let value = String.make 128 'v' in
    let fresh_req () =
      let key = Printf.sprintf "key-%04d" (Random.State.int st 512) in
      if Random.State.int st 4 = 3 then Serve.Get key
      else Serve.Put { key; value }
    in
    let window = 64 in
    let q = Queue.create () in
    let submit req =
      if Queue.length q >= window then ignore (Serve.await sv (Queue.pop q));
      Queue.push (Serve.submit sv req) q
    in
    let drain () =
      Queue.iter (fun tk -> ignore (Serve.await sv tk)) q;
      Queue.clear q
    in
    let half = ops / 2 in
    Printf.printf
      "%d shard(s), %d replica(s)/shard, %s engine, %s acks, %.0f%% \
       channel loss\n"
      nshards cfg.Replica.replicas (Shard.engine_name t)
      (Replica.ack_policy_to_string policy)
      (drop_rate *. 100.);
    for _ = 1 to half do submit (fresh_req ()) done;
    drain ();
    List.iter
      (fun s ->
        Printf.printf
          "  shard %d: %d/%d replicas live, %d commits shipped (%d ops), \
           acked through %d\n"
          s.Replica.rs_shard s.Replica.rs_live s.Replica.rs_replicas
          s.Replica.rs_seq s.Replica.rs_ops s.Replica.rs_acked_seq)
      (Serve.replication_stats sv);
    print_endline "powering off shard 0's primary device";
    Spp_sim.Memdev.power_off
      (Spp_pmdk.Pool.dev (Shard.shard_access (Shard.shard t 0)).Spp_access.pool);
    (* drain a burst against the dead primary: shard 0's share must
       resolve [Failed Failed_over], not hang, while the other shards
       keep serving *)
    let burst = 2 * window in
    let tks = Array.init burst (fun _ -> Serve.submit sv (fresh_req ())) in
    let failed = ref 0 and served = ref 0 in
    Array.iter
      (fun tk ->
        match Serve.await sv tk with
        | Serve.Failed Serve.Failed_over -> incr failed
        | _ -> incr served)
      tks;
    Printf.printf
      "burst of %d in flight: %d failed typed Failed_over, %d served by \
       live shards\n"
      burst !failed !served;
    let dt, p = Bench_util.time (fun () -> Serve.promote sv 0) in
    Printf.printf
      "promoted replica %d of shard 0 in %.1f ms: sealed acked prefix = \
       %d commits / %d ops\n"
      p.Replica.pr_replica (dt *. 1e3) p.Replica.pr_seq p.Replica.pr_ops;
    for _ = half + burst + 1 to ops do submit (fresh_req ()) done;
    drain ();
    Serve.stop sv;
    let h = Serve.merged_hist sv in
    Printf.printf
      "whole run: %d requests, %d failed typed, %d promotion(s); p50 %s, \
       p99 %s\n"
      ops (Serve.total_failed sv) (Serve.promotions sv)
      (Bench_util.fmt_lat_ns (Histogram.p50 h))
      (Bench_util.fmt_lat_ns (Histogram.p99 h))
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:
         "Demonstrate primary kill and replica promotion: drive the \
          replicated serving pipeline, power off one shard's device \
          mid-run, show in-flight tickets failing with a typed \
          Failed_over, promote the shard's warm replica and finish the \
          run on the new primary")
    Term.(const run $ variant_arg $ engine_arg $ shards_arg $ replicas_arg
          $ ack_policy_arg $ fo_ops_arg $ drop_rate_arg)

(* netbench *)

let netbench_cmd =
  let open Spp_shard in
  let open Spp_benchlib in
  let open Spp_net in
  let shards_arg =
    let doc = "Shards of the self-hosted server (ignored with --connect)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let letter_arg =
    let doc =
      "YCSB workload letter: a (50/50 read/update), b (95/5), c (read \
       only), d (read latest/insert), e (scan/insert — wants --engine \
       btree), f (read-modify-write), or `all'."
    in
    Arg.(value & opt string "b" & info [ "letter" ] ~docv:"LETTER" ~doc)
  in
  let rate_arg =
    let doc =
      "Open-loop target arrival rate in ops/s; 0 measures a quick \
       closed-loop ceiling first and targets half of it."
    in
    Arg.(value & opt float 0. & info [ "rate" ] ~docv:"OPS_PER_S" ~doc)
  in
  let closed_arg =
    let doc =
      "Closed-loop mode (throughput ceiling; tail latencies suffer \
       coordinated omission) instead of the default open loop."
    in
    Arg.(value & flag & info [ "closed" ] ~doc)
  in
  let nb_ops_arg =
    let doc = "Operations per workload letter." in
    Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let conns_arg =
    let doc = "Client connections in the pool." in
    Arg.(value & opt int 2 & info [ "conns" ] ~docv:"N" ~doc)
  in
  let nb_window_arg =
    let doc = "In-flight window of the closed loop." in
    Arg.(value & opt int 128 & info [ "window" ] ~docv:"N" ~doc)
  in
  let universe_arg =
    let doc = "Keys preloaded (over the wire) before measuring." in
    Arg.(value & opt int 2_000 & info [ "universe" ] ~docv:"N" ~doc)
  in
  let value_size_arg =
    let doc = "Value payload bytes." in
    Arg.(value & opt int 256 & info [ "value-size" ] ~docv:"BYTES" ~doc)
  in
  let connect_arg =
    let doc =
      "Drive an already-running server (e.g. `sppctl serve --listen \
       ADDR`) at unix:PATH, PORT or HOST:PORT instead of self-hosting \
       one in-process."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let run variant engine nshards letter rate closed ops conns window universe
      value_size connect =
    let letters =
      match String.lowercase_ascii letter with
      | "all" -> [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.E; Ycsb.F ]
      | s when String.length s = 1 ->
        (try [ Ycsb.letter_of_char s.[0] ]
         with Invalid_argument _ ->
           prerr_endline ("unknown workload letter " ^ letter
                          ^ " (expected a..f or all)");
           exit 2)
      | _ ->
        prerr_endline ("unknown workload letter " ^ letter
                       ^ " (expected a..f or all)");
        exit 2
    in
    let key_of = Spp_pmemkv.Db_bench.key_of_int in
    let value = String.make (max 1 value_size) 'v' in
    let cleanup, addr =
      match connect with
      | Some a -> ((fun () -> ()), Net_server.parse_addr a)
      | None ->
        let t =
          Shard.create ~nbuckets:512 ~pool_size:(1 lsl 24) ~engine
            ~nshards:(max 1 nshards) variant
        in
        let sv = Serve.create ~batch_cap:32 t in
        let sock =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "sppctl-netbench-%d.sock" (Unix.getpid ()))
        in
        let srv = Net_server.create sv (Unix.ADDR_UNIX sock) in
        Format.printf "self-hosted %d shard(s) (%s, %s engine) on %a@."
          (max 1 nshards)
          (Spp_access.variant_name variant)
          (Shard.engine_name t) Net_server.pp_addr (Net_server.addr srv);
        ( (fun () ->
            Net_server.stop srv;
            Serve.stop sv),
          Net_server.addr srv )
    in
    Fun.protect ~finally:cleanup (fun () ->
      (* preload over the wire, corked — both modes exercise it *)
      let pre = Net_client.connect ~cork:true addr in
      let futs =
        Array.init universe (fun i ->
          Net_client.send pre (Serve.Put { key = key_of i; value }))
      in
      Array.iter (fun fu -> ignore (Net_client.await pre fu)) futs;
      Net_client.close pre;
      Printf.printf "preloaded %d keys (%d B values)\n%!" universe value_size;
      let rate =
        if closed || rate > 0. then rate
        else begin
          (* quick corked closed-loop ceiling on uniform point ops *)
          let cl = Net_client.connect ~pool:conns ~cork:true addr in
          let st = Random.State.make [| 0xCE11 |] in
          let probe = max 2_000 (ops / 4) in
          let r =
            Loadgen.closed_loop cl ~window ~ops:probe ~next:(fun _ ->
              let key = key_of (Random.State.int st universe) in
              if Random.State.int st 4 = 3 then [| Serve.Get key |]
              else [| Serve.Put { key; value } |])
          in
          Net_client.close cl;
          Printf.printf
            "measured ceiling: %.0f op/s; open-loop target = half of it\n%!"
            r.Loadgen.lg_achieved;
          Float.max 1. (0.5 *. r.Loadgen.lg_achieved)
        end
      in
      Printf.printf "%-14s %-8s %-10s %-11s %-9s %-9s %-9s %s\n" "workload"
        "mode" "target/s" "achieved/s" "p50 us" "p99 us" "p999 us" "failed";
      List.iter
        (fun l ->
          let y =
            Ycsb.create ~max_span:16 ~letter:l ~seed:42 ~universe ()
          in
          let next = Loadgen.ycsb_next y ~key:key_of ~value:(fun _ -> value) in
          let r =
            if closed then begin
              let cl = Net_client.connect ~pool:conns ~cork:true addr in
              Fun.protect
                ~finally:(fun () -> Net_client.close cl)
                (fun () -> Loadgen.closed_loop cl ~window ~ops ~next)
            end
            else begin
              let cl = Net_client.connect ~pool:conns addr in
              Fun.protect
                ~finally:(fun () -> Net_client.close cl)
                (fun () -> Loadgen.open_loop cl ~rate ~ops ~next)
            end
          in
          let us h p = float_of_int (Histogram.percentile h p) /. 1e3 in
          Printf.printf "%-14s %-8s %-10.0f %-11.0f %-9.1f %-9.1f %-9.1f %d\n%!"
            (Printf.sprintf "%c (%s)"
               (Char.uppercase_ascii (Ycsb.char_of_letter l))
               (List.hd
                  (String.split_on_char ',' (Ycsb.describe l))))
            (if closed then "closed" else "open")
            r.Loadgen.lg_target r.Loadgen.lg_achieved
            (us r.Loadgen.lg_hist 50.) (us r.Loadgen.lg_hist 99.)
            (us r.Loadgen.lg_hist 99.9) r.Loadgen.lg_failed)
        letters)
  in
  Cmd.v
    (Cmd.info "netbench"
       ~doc:
         "Run the YCSB workload suite against the wire front end: \
          open-loop by default (arrival times drawn from the target \
          rate before sending; latency measured from the intended send \
          time, so tail percentiles include the queueing delay that \
          coordinated omission would hide), or --closed for a \
          throughput ceiling. Self-hosts a server on a unix socket \
          unless --connect points at a running `sppctl serve --listen'")
    Term.(const run $ variant_arg $ engine_arg $ shards_arg $ letter_arg
          $ rate_arg $ closed_arg $ nb_ops_arg $ conns_arg $ nb_window_arg
          $ universe_arg $ value_size_arg $ connect_arg)

let () =
  let doc = "Safe Persistent Pointers (SPP) reproduction toolkit" in
  (* One consolidated matrix so nobody has to assemble it from eleven
     per-subcommand --help pages. *)
  let man =
    [ `S "COMMAND MATRIX";
      `P "Which subcommand takes which KV engine and drives which \
          workload. VARIANTS abbreviates pmdk | spp | safepm | memcheck \
          (--variant); ENGINES abbreviates cmap | btree (--engine); \
          letters a-f are the YCSB workloads of `netbench --letter'.";
      `Pre
        "COMMAND    VARIANTS  ENGINES     WORKLOAD\n\
         info       -         -           (print pointer-encoding config)\n\
         decode     -         -           (decode one tagged pointer)\n\
         attack     yes       -           RIPE buffer-overflow matrix\n\
         index      yes       -           index ops (ctree|rbtree|rtree|hashmap_tx)\n\
         check      yes       -           index workload under pmemcheck\n\
         explore    yes       -           crash-state exploration of one op\n\
         pool-demo  yes       -           allocate/free demo pool\n\
         pool-open  yes       -           reopen + verify a pool file\n\
         torture    yes       cmap|btree  crash-point enumeration + faults\n\
         serve      yes       cmap|btree  synthetic 3:1 put:get (or --listen ADDR)\n\
         failover   yes       cmap|btree  replicated run + primary kill\n\
         netbench   yes       cmap|btree  YCSB a|b|c|d|f (any), e (btree scans)";
      `P "YCSB letters: a = 50/50 read/update zipfian; b = 95/5 \
          read/update; c = 100% read; d = 95/5 read-latest/insert; e = \
          95/5 scan/insert (needs ordered scans, so --engine btree); f \
          = 50/50 read/read-modify-write.";
      `P "Wire serving: `sppctl serve --listen unix:/tmp/spp.sock' \
          exposes the pipeline; `sppctl netbench --connect \
          unix:/tmp/spp.sock --letter all' drives it open-loop." ]
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "sppctl" ~version:"1.0.0" ~doc ~man)
          [ info_cmd; decode_cmd; attack_cmd; index_cmd; check_cmd;
            explore_cmd; pool_demo_cmd; pool_open_cmd; torture_cmd;
            serve_cmd; failover_cmd; netbench_cmd ]))
